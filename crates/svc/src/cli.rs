//! The `rtas-svc` command-line surface, as data.
//!
//! The serve flag table below is the **single source of truth** for
//! the server's CLI: the binary's usage text is rendered from it
//! ([`serve_usage`]) and the parser ([`parse_serve`]) is tested
//! against it flag by flag, so the help text can never drift from
//! what the parser accepts. `docs/OPERATIONS.md` documents the same
//! table in prose, and a repo-level test asserts it mentions every
//! flag named here.
//!
//! The parser returns `Err(message)` instead of exiting so it can be
//! unit-tested; the binary maps errors to the usual
//! print-usage-and-exit-2 behavior.

use std::time::Duration;

use rtas_obs::TraceMode;

use crate::reactor::Engine;
use crate::server::SvcConfig;

/// One `rtas-svc serve` flag: its spelling, value placeholder,
/// rendered default, and one-line help.
#[derive(Debug, Clone, Copy)]
pub struct Flag {
    /// The flag as typed, e.g. `--max-conns`.
    pub name: &'static str,
    /// Placeholder for the value in usage text, e.g. `<n>`.
    pub value: &'static str,
    /// The default, as shown to the operator.
    pub default: &'static str,
    /// One-line description (units included where they apply).
    pub help: &'static str,
    /// A representative valid value, used by the round-trip test.
    pub sample: &'static str,
}

/// The bind address `rtas-svc` uses when `--addr` is omitted (the
/// library's [`SvcConfig`] default picks a free port instead).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7045";

/// Every flag `rtas-svc serve` accepts. Order is the help-text order.
pub const SERVE_FLAGS: &[Flag] = &[
    Flag {
        name: "--addr",
        value: "<host:port>",
        default: DEFAULT_ADDR,
        help: "bind address",
        sample: "127.0.0.1:0",
    },
    Flag {
        name: "--shards",
        value: "<n>",
        default: "8",
        help: "namespace shards (independent key maps + locks)",
        sample: "4",
    },
    Flag {
        name: "--capacity",
        value: "<n>",
        default: "64",
        help: "participants admitted per key-epoch",
        sample: "16",
    },
    Flag {
        name: "--backend",
        value: "<b>",
        default: "combined",
        help: "algorithm: logstar | loglog | ratrace | combined",
        sample: "ratrace",
    },
    Flag {
        name: "--listeners",
        value: "<n>",
        default: "2",
        help: "accept threads sharing the listening socket",
        sample: "1",
    },
    Flag {
        name: "--engine",
        value: "<e>",
        default: "epoll (threads where unsupported)",
        help: "connection engine: epoll | poll | threads",
        sample: "threads",
    },
    Flag {
        name: "--workers",
        value: "<n>",
        default: "available parallelism, capped at 8",
        help: "reactor worker threads (epoll/poll engines only)",
        sample: "2",
    },
    Flag {
        name: "--max-keys",
        value: "<n>",
        default: "1048576",
        help: "ceiling on live keys across all shards",
        sample: "1000",
    },
    Flag {
        name: "--lease-ms",
        value: "<ms>",
        default: "off",
        help: "reclaim epochs whose winner never acks RESET after this many ms",
        sample: "250",
    },
    Flag {
        name: "--read-timeout-ms",
        value: "<ms>",
        default: "off",
        help: "answer ERR and close connections idle past this many ms",
        sample: "5000",
    },
    Flag {
        name: "--max-conns",
        value: "<n>",
        default: "1024",
        help: "refuse connections beyond this many live",
        sample: "100",
    },
    Flag {
        name: "--trace",
        value: "<m>",
        default: "off",
        help: "flight recorder: on | off | sampled:<n> (every nth frame)",
        sample: "sampled:16",
    },
];

/// The full usage text, rendered from [`SERVE_FLAGS`].
pub fn serve_usage() -> String {
    let mut out = String::from("usage: rtas-svc serve [options]        run a server (blocks)\n");
    for flag in SERVE_FLAGS {
        let head = format!("  {} {}", flag.name, flag.value);
        out.push_str(&format!(
            "{head:<28}{}  (default {})\n",
            flag.help, flag.default
        ));
    }
    out.push_str(
        "       rtas-svc stats [--addr <host:port>] [--json | --raw | --metrics]\n\
         \x20                                  print a server's counters (default named\n\
         \x20                                  fields; --metrics fetches the METRICS\n\
         \x20                                  exposition) and exit\n\
         \x20      rtas-svc top [--addr <host:port>] [--interval-ms <ms>] [--once] [--json]\n\
         \x20                                  live terminal view over the METRICS plane:\n\
         \x20                                  per-second rates, per-worker gauges, stage\n\
         \x20                                  latency sparklines (--once prints a single\n\
         \x20                                  sample and exits; --json implies --once)\n\
         \x20      rtas-svc trace-dump <file> [--json]\n\
         \x20                                  decode a flight-recorder dump (RTASTRC1)\n\
         \x20                                  as a timeline (or JSON) and exit\n\
         \x20                                  (cross-tier merge/audit: see rtas-trace)\n",
    );
    out
}

/// Render [`SvcStats`](crate::protocol::SvcStats) as one flat JSON
/// object with numeric values — the `rtas-svc stats --json` output.
/// Lives in the library so the bench harness can round-trip it
/// (`rtas_bench::report::parse_json_object`) under test.
pub fn stats_to_json(s: &crate::protocol::SvcStats) -> String {
    format!(
        "{{\"keys\":{},\"ops\":{},\"wins\":{},\"resets\":{},\"registers\":{},\
         \"reclaimed\":{},\"conns\":{},\"refused\":{}}}",
        s.keys, s.ops, s.wins, s.resets, s.registers, s.reclaimed, s.conns, s.refused
    )
}

/// Parse `rtas-svc serve` arguments (everything after the subcommand)
/// into a validated [`SvcConfig`]. `Err` carries the message to print
/// above the usage text.
pub fn parse_serve(args: &[String]) -> Result<SvcConfig, String> {
    let mut config = SvcConfig {
        addr: DEFAULT_ADDR.to_string(),
        ..SvcConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        fn parsed<T: std::str::FromStr>(name: &str, value: &str) -> Result<T, String> {
            value
                .parse::<T>()
                .map_err(|_| format!("{name} value {value:?} is invalid"))
        }
        fn positive(name: &str, value: &str) -> Result<usize, String> {
            let n: usize = parsed(name, value)?;
            if n == 0 {
                return Err(format!("{name} must be positive"));
            }
            Ok(n)
        }
        fn positive_ms(name: &str, value: &str) -> Result<Duration, String> {
            let ms: u64 = parsed(name, value)?;
            if ms == 0 {
                return Err(format!("{name} must be positive (omit to disable)"));
            }
            Ok(Duration::from_millis(ms))
        }
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--shards" => config.shards = positive("--shards", value("--shards")?)?,
            "--capacity" => config.capacity = positive("--capacity", value("--capacity")?)?,
            "--listeners" => config.listeners = positive("--listeners", value("--listeners")?)?,
            "--workers" => config.workers = positive("--workers", value("--workers")?)?,
            "--max-keys" => config.max_keys = positive("--max-keys", value("--max-keys")?)?,
            "--max-conns" => config.max_conns = positive("--max-conns", value("--max-conns")?)?,
            "--lease-ms" => config.lease = Some(positive_ms("--lease-ms", value("--lease-ms")?)?),
            "--read-timeout-ms" => {
                config.read_timeout = Some(positive_ms(
                    "--read-timeout-ms",
                    value("--read-timeout-ms")?,
                )?)
            }
            "--engine" => {
                let v = value("--engine")?;
                config.engine = Engine::parse(v)
                    .ok_or_else(|| format!("unknown engine {v:?} (epoll|poll|threads)"))?;
            }
            "--backend" => {
                let v = value("--backend")?;
                config.backend = rtas::Backend::parse(v).ok_or_else(|| {
                    format!("unknown backend {v:?} (logstar|loglog|ratrace|combined)")
                })?;
            }
            "--trace" => {
                let v = value("--trace")?;
                config.trace = TraceMode::parse(v)
                    .ok_or_else(|| format!("unknown trace mode {v:?} (on|off|sampled:<n>)"))?;
            }
            flag => return Err(format!("unknown argument {flag}")),
        }
    }
    if config.capacity > crate::namespace::MAX_CAPACITY {
        return Err(format!(
            "--capacity must be at most {} (the per-epoch admission counter width)",
            crate::namespace::MAX_CAPACITY
        ));
    }
    if !config.engine.supported() {
        return Err(format!(
            "engine '{}' is unsupported in this build (no syscall shim); use --engine threads",
            config.engine
        ));
    }
    Ok(config)
}

/// Parsed `rtas-svc stats` arguments: the address to query plus one
/// (at most) output selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsArgs {
    /// Server to query (default [`DEFAULT_ADDR`]).
    pub addr: String,
    /// Render the counters as one JSON object.
    pub json: bool,
    /// Render the legacy single `a | b | c` line (the pre-9 default,
    /// kept for scripts that scrape it).
    pub raw: bool,
    /// Fetch the `METRICS` exposition instead of `STATS` and print it
    /// verbatim.
    pub metrics: bool,
}

/// Parse `rtas-svc stats` arguments: `--addr` plus at most one of
/// `--json` / `--raw` / `--metrics`.
pub fn parse_stats(args: &[String]) -> Result<StatsArgs, String> {
    let mut parsed = StatsArgs {
        addr: DEFAULT_ADDR.to_string(),
        json: false,
        raw: false,
        metrics: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                parsed.addr = iter
                    .next()
                    .ok_or_else(|| "--addr requires a value".to_string())?
                    .clone();
            }
            "--json" => parsed.json = true,
            "--raw" => parsed.raw = true,
            "--metrics" => parsed.metrics = true,
            flag => return Err(format!("unknown argument {flag}")),
        }
    }
    if usize::from(parsed.json) + usize::from(parsed.raw) + usize::from(parsed.metrics) > 1 {
        return Err("--json, --raw and --metrics are mutually exclusive".to_string());
    }
    Ok(parsed)
}

/// Parsed `rtas-svc top` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopArgs {
    /// Server to poll (default [`DEFAULT_ADDR`]).
    pub addr: String,
    /// Poll interval between samples.
    pub interval: Duration,
    /// Print one sample and exit instead of looping.
    pub once: bool,
    /// Emit the sample as one flat JSON object (implies `once`).
    pub json: bool,
}

/// Parse `rtas-svc top` arguments: `--addr`, `--interval-ms` (default
/// 1000), `--once`, and `--json` (which implies `--once`: a JSON
/// stream with screen-clear escapes would help nobody).
pub fn parse_top(args: &[String]) -> Result<TopArgs, String> {
    let mut parsed = TopArgs {
        addr: DEFAULT_ADDR.to_string(),
        interval: Duration::from_millis(1000),
        once: false,
        json: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => parsed.addr = value("--addr")?.clone(),
            "--interval-ms" => {
                let v = value("--interval-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("--interval-ms value {v:?} is invalid"))?;
                if ms == 0 {
                    return Err("--interval-ms must be positive".to_string());
                }
                parsed.interval = Duration::from_millis(ms);
            }
            "--once" => parsed.once = true,
            "--json" => parsed.json = true,
            flag => return Err(format!("unknown argument {flag}")),
        }
    }
    if parsed.json {
        parsed.once = true;
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drift guard: every flag in the table parses with its sample
    /// value, so the rendered help can never advertise a flag the
    /// parser rejects.
    #[test]
    fn every_advertised_flag_parses() {
        for flag in SERVE_FLAGS {
            let args = vec![flag.name.to_string(), flag.sample.to_string()];
            let parsed = parse_serve(&args);
            assert!(
                parsed.is_ok(),
                "{} {} rejected: {:?}",
                flag.name,
                flag.sample,
                parsed.err()
            );
        }
    }

    /// And the converse: the rendered usage mentions every flag the
    /// parser accepts (the table IS the parser's switch list).
    #[test]
    fn usage_mentions_every_flag() {
        let usage = serve_usage();
        for flag in SERVE_FLAGS {
            assert!(usage.contains(flag.name), "usage omits {}", flag.name);
        }
    }

    #[test]
    fn parse_rejects_unknown_flags_and_bad_values() {
        let err = |args: &[&str]| {
            parse_serve(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
        };
        assert!(err(&["--bogus"]).contains("unknown argument"));
        assert!(err(&["--shards"]).contains("requires a value"));
        assert!(err(&["--shards", "0"]).contains("must be positive"));
        assert!(err(&["--shards", "many"]).contains("is invalid"));
        assert!(err(&["--lease-ms", "0"]).contains("omit to disable"));
        assert!(err(&["--engine", "uring"]).contains("unknown engine"));
        assert!(err(&["--backend", "quantum"]).contains("unknown backend"));
        let cap_err = err(&["--capacity", "1000000000"]);
        assert!(cap_err.contains("--capacity must be at most"), "{cap_err}");
    }

    #[test]
    fn parse_fills_config_fields() {
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:9000",
            "--shards",
            "3",
            "--capacity",
            "5",
            "--backend",
            "loglog",
            "--listeners",
            "1",
            "--engine",
            "poll",
            "--workers",
            "2",
            "--max-keys",
            "10",
            "--lease-ms",
            "250",
            "--read-timeout-ms",
            "1000",
            "--max-conns",
            "7",
            "--trace",
            "sampled:32",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let config = parse_serve(&args).unwrap();
        assert_eq!(config.addr, "0.0.0.0:9000");
        assert_eq!(config.shards, 3);
        assert_eq!(config.capacity, 5);
        assert_eq!(config.backend, rtas::Backend::LogLog);
        assert_eq!(config.listeners, 1);
        assert_eq!(config.engine, Engine::Poll);
        assert_eq!(config.workers, 2);
        assert_eq!(config.max_keys, 10);
        assert_eq!(config.lease, Some(Duration::from_millis(250)));
        assert_eq!(config.read_timeout, Some(Duration::from_millis(1000)));
        assert_eq!(config.max_conns, 7);
        assert_eq!(config.trace, TraceMode::Sampled(32));
    }

    #[test]
    fn stats_parses_addr_and_one_output_selector() {
        let parsed = parse_stats(&[]).unwrap();
        assert_eq!(parsed.addr, DEFAULT_ADDR);
        assert!(!parsed.json && !parsed.raw && !parsed.metrics);

        let strs = |args: &[&str]| args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let parsed = parse_stats(&strs(&["--addr", "10.0.0.1:1", "--json"])).unwrap();
        assert_eq!(parsed.addr, "10.0.0.1:1");
        assert!(parsed.json);
        assert!(parse_stats(&strs(&["--raw"])).unwrap().raw);
        assert!(parse_stats(&strs(&["--metrics"])).unwrap().metrics);

        assert!(parse_stats(&strs(&["--x"])).is_err());
        let err = parse_stats(&strs(&["--json", "--raw"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn top_parses_its_flags_and_json_implies_once() {
        let strs = |args: &[&str]| args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let parsed = parse_top(&[]).unwrap();
        assert_eq!(parsed.addr, DEFAULT_ADDR);
        assert_eq!(parsed.interval, Duration::from_millis(1000));
        assert!(!parsed.once && !parsed.json);

        let parsed = parse_top(&strs(&[
            "--addr",
            "10.0.0.1:1",
            "--interval-ms",
            "250",
            "--once",
        ]))
        .unwrap();
        assert_eq!(parsed.addr, "10.0.0.1:1");
        assert_eq!(parsed.interval, Duration::from_millis(250));
        assert!(parsed.once);

        let parsed = parse_top(&strs(&["--json"])).unwrap();
        assert!(parsed.json && parsed.once, "--json implies --once");

        assert!(parse_top(&strs(&["--interval-ms", "0"])).is_err());
        assert!(parse_top(&strs(&["--interval-ms", "soon"])).is_err());
        assert!(parse_top(&strs(&["--bogus"])).is_err());
    }

    #[test]
    fn stats_json_is_flat_and_numeric() {
        let s = crate::protocol::SvcStats {
            keys: 1,
            ops: 2,
            wins: 3,
            resets: 4,
            registers: 5,
            reclaimed: 6,
            conns: 7,
            refused: 8,
        };
        let json = stats_to_json(&s);
        assert_eq!(
            json,
            "{\"keys\":1,\"ops\":2,\"wins\":3,\"resets\":4,\"registers\":5,\
             \"reclaimed\":6,\"conns\":7,\"refused\":8}"
        );
    }

    #[test]
    fn bad_trace_modes_are_rejected() {
        let err = |args: &[&str]| {
            parse_serve(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
        };
        assert!(err(&["--trace", "always"]).contains("unknown trace mode"));
        assert!(err(&["--trace", "sampled:0"]).contains("unknown trace mode"));
    }
}
