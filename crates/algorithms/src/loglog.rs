//! Theorem 2.4: adaptive leader election with O(log log k) expected steps
//! against the R/W-oblivious adversary, from O(n) registers.
//!
//! Two layers, following Section 2.3:
//!
//! 1. **Non-adaptive core** — the Section 2.1 ladder instantiated with
//!    *sifting* group elections (Alistarh–Aspnes): round `i` uses write
//!    probability `π_i = 1/√s_i` where `s_i = n^(1/2^i)` is the expected
//!    survivor count, so Θ(log log n) rounds reduce the contenders to
//!    O(1).
//! 2. **Adaptivity wrapper** — a cascade of such ladders `LE₀, LE₁, …` of
//!    doubly-exponentially increasing capacity `n_j = 2^(2^(2^j))`
//!    (clamped at `n`). In ladder `j`, a process participates in only
//!    `Θ(log log n_j) = Θ(2^j)` levels; one that exhausts them without
//!    losing or winning a splitter **overflows** into `LE_{j+1}`. A
//!    process with true contention `k` stabilizes in the ladder with
//!    `log log n_j = Θ(log log k)` after O(log log k) total steps. The
//!    winner of each ladder enters a final chain of 2-process elections
//!    that decides the overall winner.
//!
//! The last ladder is sized for `n` with a full `n` levels (sifting
//! rounds followed by dummy group elections), so it can never overflow —
//! every execution elects exactly one leader.

use std::sync::Arc;

use rtas_primitives::{RoleLeaderElect, TwoProcessLe};
use rtas_sim::memory::Memory;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};

use crate::group_elect::{ceil_log2, DummyGroupElect, GroupElect, SiftingGroupElect};
use crate::le_chain::{chain_ret, LeChain, OverflowPolicy};
use crate::LeaderElect;

/// The **non-adaptive** Alistarh–Aspnes leader election (the prior work
/// the paper's Theorem 2.4 makes adaptive): one Section 2.1 ladder with
/// Θ(log log n) sifting rounds followed by dummy levels up to `n`, giving
/// O(log log n) expected steps (in `n`, not `k`) from O(n) registers.
///
/// Kept as a distinct object because it is the baseline the paper
/// compares against; [`LogLogLe`] stacks these to get adaptivity.
#[derive(Debug, Clone)]
pub struct AaLe {
    chain: LeChain,
    sifting_rounds: usize,
}

impl AaLe {
    /// Build the structure for up to `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(memory: &mut Memory, n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let n_eff = n.max(4);
        let rounds = sifting_rounds(n_eff);
        let probs = sifting_probabilities(n_eff, rounds);
        let mut ges: Vec<Arc<dyn GroupElect>> = probs
            .iter()
            .map(|&p| Arc::new(SiftingGroupElect::new(memory, p, "aa-sift")) as Arc<dyn GroupElect>)
            .collect();
        while ges.len() < n_eff {
            ges.push(Arc::new(DummyGroupElect::new()));
        }
        let chain = LeChain::new(memory, ges, OverflowPolicy::Lose, "aa-ladder");
        AaLe {
            chain,
            sifting_rounds: rounds,
        }
    }

    /// Number of sifting rounds (Θ(log log n)).
    pub fn sifting_rounds(&self) -> usize {
        self.sifting_rounds
    }

    /// Build the per-process `elect()` protocol.
    pub fn elect(&self) -> Box<dyn Protocol> {
        self.chain.elect()
    }
}

impl LeaderElect for AaLe {
    fn elect(&self) -> Box<dyn Protocol> {
        AaLe::elect(self)
    }
}

/// The Theorem 2.4 leader election.
#[derive(Clone)]
pub struct LogLogLe {
    stages: Arc<Vec<LeChain>>,
    finals: Arc<Vec<TwoProcessLe>>,
    n: usize,
}

impl std::fmt::Debug for LogLogLe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogLogLe")
            .field("n", &self.n)
            .field("stages", &self.stages.len())
            .finish()
    }
}

/// Sifting write-probability schedule for a ladder sized for `cap`
/// processes: `π_i = 1/√s_i`, `s_i = cap^(1/2^i)` (floored at 4).
fn sifting_probabilities(cap: usize, rounds: usize) -> Vec<f64> {
    let mut probs = Vec::with_capacity(rounds);
    let mut s = (cap.max(4)) as f64;
    for _ in 0..rounds {
        probs.push(SiftingGroupElect::probability_for_expected(s));
        s = s.sqrt().max(4.0);
    }
    probs
}

/// Number of sifting rounds for a ladder sized for `cap` processes:
/// `⌈log₂ log₂ cap⌉ + 2`.
fn sifting_rounds(cap: usize) -> usize {
    let log = ceil_log2(cap.max(4)) as usize;
    let loglog = ceil_log2(log.max(2)) as usize;
    loglog + 2
}

impl LogLogLe {
    /// Build the structure for up to `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(memory: &mut Memory, n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let n_eff = n.max(4);
        // Stage capacities 4, 16, 65536, …, clamped at n.
        let mut caps = Vec::new();
        let mut e = 1u32; // exponent tower: n_j = 2^(2^e), e = 2^j
        loop {
            let cap = if e >= 6 {
                n_eff // 2^64 and beyond: clamp
            } else {
                (1u64 << (1u64 << e)).min(n_eff as u64) as usize
            };
            caps.push(cap);
            if cap >= n_eff {
                break;
            }
            e = e.saturating_mul(2);
        }
        let last = caps.len() - 1;
        let mut stages = Vec::with_capacity(caps.len());
        for (j, &cap) in caps.iter().enumerate() {
            let rounds = sifting_rounds(cap);
            let probs = sifting_probabilities(cap, rounds);
            let mut ges: Vec<Arc<dyn GroupElect>> = probs
                .iter()
                .map(|&p| {
                    Arc::new(SiftingGroupElect::new(memory, p, "loglog-sift"))
                        as Arc<dyn GroupElect>
                })
                .collect();
            let policy = if j == last {
                // Final stage: pad with dummies to n levels so the ladder
                // can never overflow (each splitter retires ≥ 1 process).
                while ges.len() < n_eff {
                    ges.push(Arc::new(DummyGroupElect::new()));
                }
                OverflowPolicy::Lose
            } else {
                OverflowPolicy::Overflow
            };
            stages.push(LeChain::new(memory, ges, policy, "loglog-ladder"));
        }
        let finals = (0..stages.len())
            .map(|_| TwoProcessLe::new(memory, "loglog-final"))
            .collect();
        LogLogLe {
            stages: Arc::new(stages),
            finals: Arc::new(finals),
            n,
        }
    }

    /// Maximum number of participating processes.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Number of ladders in the cascade.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Build the per-process `elect()` protocol.
    pub fn elect(&self) -> Box<dyn Protocol> {
        Box::new(LogLogProtocol {
            le: self.clone(),
            state: State::Stage,
            index: 0,
        })
    }
}

impl LeaderElect for LogLogLe {
    fn elect(&self) -> Box<dyn Protocol> {
        LogLogLe::elect(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// About to enter ladder `index`.
    Stage,
    /// Waiting for ladder `index`.
    AfterStage,
    /// About to play final `index` as role 0 (fresh stage winner).
    FinalAsWinner,
    /// About to play final `index` as role 1 (came from final `index+1`).
    FinalAsClimber,
    /// Waiting for final `index` (previous role in `came_as_winner`).
    AfterFinal,
}

struct LogLogProtocol {
    le: LogLogLe,
    state: State,
    index: usize,
}

impl Protocol for LogLogProtocol {
    fn resume(&mut self, input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
        loop {
            match self.state {
                State::Stage => {
                    self.state = State::AfterStage;
                    return Poll::Call(self.le.stages[self.index].elect());
                }
                State::AfterStage => match input.child_value() {
                    v if v == chain_ret::WIN => {
                        self.state = State::FinalAsWinner;
                    }
                    v if v == chain_ret::LOSE => return Poll::Done(ret::LOSE),
                    v if v == chain_ret::OVERFLOW => {
                        self.index += 1;
                        debug_assert!(self.index < self.le.stages.len());
                        self.state = State::Stage;
                    }
                    other => panic!("invalid stage result {other}"),
                },
                State::FinalAsWinner => {
                    self.state = State::AfterFinal;
                    return Poll::Call(self.le.finals[self.index].elect_as(0));
                }
                State::FinalAsClimber => {
                    self.state = State::AfterFinal;
                    return Poll::Call(self.le.finals[self.index].elect_as(1));
                }
                State::AfterFinal => {
                    if input.child_value() == ret::LOSE {
                        return Poll::Done(ret::LOSE);
                    }
                    if self.index == 0 {
                        return Poll::Done(ret::WIN);
                    }
                    self.index -= 1;
                    self.state = State::FinalAsClimber;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "loglog-le"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::word::ProcessId;

    #[test]
    fn sifting_rounds_grow_doubly_logarithmically() {
        assert!(sifting_rounds(4) <= 4);
        assert!(sifting_rounds(65536) <= 7);
        assert!(sifting_rounds(1 << 20) <= 8);
    }

    #[test]
    fn probability_schedule_is_decreasing_in_survivors() {
        let probs = sifting_probabilities(65536, 5);
        assert_eq!(probs.len(), 5);
        // π grows as survivors shrink.
        for w in probs.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((probs[0] - 1.0 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn solo_process_wins() {
        let mut mem = Memory::new();
        let le = LogLogLe::new(&mut mem, 16);
        let res = Execution::new(mem, vec![le.elect()], 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
    }

    #[test]
    fn unique_winner_random_schedules() {
        for k in [2usize, 4, 10, 32] {
            for seed in 0..30 {
                let mut mem = Memory::new();
                let le = LogLogLe::new(&mut mem, k);
                let protos = (0..k).map(|_| le.elect()).collect();
                let res =
                    Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 41));
                assert!(res.all_finished(), "k={k} seed={seed}");
                assert_eq!(
                    res.processes_with_outcome(ret::WIN).len(),
                    1,
                    "k={k} seed={seed}: {:?}",
                    res.outcomes()
                );
            }
        }
    }

    #[test]
    fn unique_winner_lockstep() {
        for k in [2usize, 6, 16] {
            for seed in 0..15 {
                let mut mem = Memory::new();
                let le = LogLogLe::new(&mut mem, k);
                let protos = (0..k).map(|_| le.elect()).collect();
                let res = Execution::new(mem, protos, seed).run(&mut RoundRobin::new(k));
                assert!(res.all_finished());
                assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
            }
        }
    }

    #[test]
    fn aa_le_solo_wins() {
        let mut mem = Memory::new();
        let le = AaLe::new(&mut mem, 16);
        let res = Execution::new(mem, vec![le.elect()], 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
    }

    #[test]
    fn aa_le_unique_winner_random_schedules() {
        for k in [2usize, 6, 20] {
            for seed in 0..25 {
                let mut mem = Memory::new();
                let le = AaLe::new(&mut mem, k);
                let protos = (0..k).map(|_| le.elect()).collect();
                let res =
                    Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 53));
                assert!(res.all_finished(), "k={k} seed={seed}");
                assert_eq!(
                    res.processes_with_outcome(ret::WIN).len(),
                    1,
                    "k={k} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn aa_le_sifting_round_count() {
        let mut mem = Memory::new();
        let le = AaLe::new(&mut mem, 1 << 16);
        // ⌈log₂ log₂ 65536⌉ + 2 = 6.
        assert_eq!(le.sifting_rounds(), 6);
    }

    #[test]
    fn stage_count_is_tiny() {
        let mut mem = Memory::new();
        let le = LogLogLe::new(&mut mem, 1 << 16);
        // 4, 16, 65536 → 3 stages.
        assert_eq!(le.stages(), 3);
    }

    #[test]
    fn space_is_linear_in_n() {
        for n in [64usize, 256, 1024] {
            let mut mem = Memory::new();
            let _le = LogLogLe::new(&mut mem, n);
            let declared = mem.declared_registers();
            assert!(
                declared <= 8 * n as u64 + 400,
                "n={n}: {declared} registers not O(n)"
            );
        }
    }

    #[test]
    fn low_contention_on_big_structure_is_fast() {
        // k = 4 on an n = 1024 structure: the process should stabilize in
        // an early stage; steps should be far below log n territory.
        let mut total = 0u64;
        let trials = 20;
        for seed in 0..trials {
            let mut mem = Memory::new();
            let le = LogLogLe::new(&mut mem, 1024);
            let protos = (0..4).map(|_| le.elect()).collect();
            let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed));
            assert!(res.all_finished());
            assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
            total += res.steps().max();
        }
        let mean = total as f64 / trials as f64;
        assert!(mean < 60.0, "mean max steps {mean}");
    }
}
