//! The Alistarh–Aspnes *sifting* Group Election (Section 2.3).
//!
//! One shared register. Each participant independently **writes** a mark
//! with probability `π` or **reads** with probability `1 − π`; it is
//! elected iff it writes, or it reads before any write landed. The
//! decision read-vs-write is random, which is exactly what the
//! R/W-oblivious adversary cannot see.
//!
//! With `k` participants the expected number elected is about
//! `πk + 1/π` (writers plus early readers), minimized at `π = 1/√k` giving
//! `≈ 2√k` — the halving of the exponent that yields O(log log n) rounds
//! of sifting (experiment E8 regenerates the survivor-count series).

use rtas_sim::memory::Memory;
use rtas_sim::op::MemOp;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::RegId;

use super::GroupElect;

/// Descriptor of one sifting round (1 register).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftingGroupElect {
    reg: RegId,
    write_probability: f64,
}

impl SiftingGroupElect {
    /// Allocate a sifting round with the given write probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < write_probability <= 1`.
    pub fn new(memory: &mut Memory, write_probability: f64, label: &str) -> Self {
        assert!(
            write_probability > 0.0 && write_probability <= 1.0,
            "write probability must be in (0, 1], got {write_probability}"
        );
        let reg = memory.alloc(1, label).get(0);
        SiftingGroupElect {
            reg,
            write_probability,
        }
    }

    /// The write probability `π` used for the expected-survivor tuning
    /// `π = 1/√s` when `s` participants are expected.
    pub fn probability_for_expected(s: f64) -> f64 {
        (1.0 / s.max(1.0).sqrt()).clamp(1e-9, 1.0)
    }

    /// This round's write probability.
    pub fn write_probability(&self) -> f64 {
        self.write_probability
    }

    /// Registers used per round.
    pub const REGISTERS: u64 = 1;
}

impl GroupElect for SiftingGroupElect {
    fn elect(&self) -> Box<dyn Protocol> {
        Box::new(SiftingProtocol {
            ge: *self,
            state: State::Start,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    Wrote,
    Read,
}

#[derive(Debug)]
struct SiftingProtocol {
    ge: SiftingGroupElect,
    state: State,
}

impl Protocol for SiftingProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        match self.state {
            State::Start => {
                // The random read-vs-write decision, invisible to the
                // R/W-oblivious adversary (it sees only the register).
                if ctx.rng.bernoulli(self.ge.write_probability) {
                    self.state = State::Wrote;
                    Poll::Op(MemOp::Write(self.ge.reg, 1))
                } else {
                    self.state = State::Read;
                    Poll::Op(MemOp::Read(self.ge.reg))
                }
            }
            State::Wrote => Poll::Done(ret::WIN),
            State::Read => {
                if input.read_value() == 0 {
                    Poll::Done(ret::WIN)
                } else {
                    Poll::Done(ret::LOSE)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "sifting-group-elect"
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_group_election;
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::explore::{explore, ExploreConfig};
    use rtas_sim::metrics::Aggregate;
    use rtas_sim::word::ProcessId;

    #[test]
    fn solo_caller_is_elected_in_one_step() {
        for seed in 0..10 {
            let mut mem = Memory::new();
            let ge = SiftingGroupElect::new(&mut mem, 0.3, "sift");
            let res = Execution::new(mem, vec![ge.elect()], seed).run(&mut RoundRobin::new(1));
            assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
            assert_eq!(res.steps().total(), 1);
        }
    }

    #[test]
    fn at_least_one_elected_always() {
        for k in [2usize, 5, 30] {
            for seed in 0..50 {
                let mut mem = Memory::new();
                let ge = SiftingGroupElect::new(&mut mem, 0.2, "sift");
                let (elected, finished) =
                    run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed));
                assert_eq!(finished, k);
                assert!(elected >= 1);
            }
        }
    }

    #[test]
    fn exhaustive_three_processes_at_least_one_elected() {
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let ge = SiftingGroupElect::new(&mut mem, 0.5, "sift");
                (mem, (0..3).map(|_| ge.elect()).collect())
            },
            ExploreConfig::default(),
            |e| {
                assert!(e.all_finished());
                assert!(!e.with_outcome(ret::WIN).is_empty());
            },
        );
        assert_eq!(stats.truncated_paths, 0);
    }

    #[test]
    fn expected_elected_tracks_pik_plus_inv_pi() {
        let k = 400usize;
        let pi = SiftingGroupElect::probability_for_expected(k as f64); // 1/20
        let mut agg = Aggregate::new();
        for seed in 0..80 {
            let mut mem = Memory::new();
            let ge = SiftingGroupElect::new(&mut mem, pi, "sift");
            let (elected, _) =
                run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed * 13));
            agg.push(elected as f64);
        }
        // πk + 1/π = 20 + 20 = 40; allow generous sampling slack.
        let expect = pi * k as f64 + 1.0 / pi;
        assert!(
            (agg.mean() - expect).abs() < expect * 0.5,
            "mean {} vs expectation {expect}",
            agg.mean()
        );
    }

    #[test]
    fn probability_helper_clamps() {
        assert_eq!(SiftingGroupElect::probability_for_expected(0.0), 1.0);
        assert_eq!(SiftingGroupElect::probability_for_expected(1.0), 1.0);
        let p = SiftingGroupElect::probability_for_expected(100.0);
        assert!((p - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "write probability")]
    fn zero_probability_panics() {
        let mut mem = Memory::new();
        let _ = SiftingGroupElect::new(&mut mem, 0.0, "sift");
    }

    #[test]
    fn register_accounting() {
        let mut mem = Memory::new();
        let _ = SiftingGroupElect::new(&mut mem, 0.5, "sift");
        assert_eq!(mem.declared_registers(), SiftingGroupElect::REGISTERS);
    }
}
