//! Figure 1: Group Election for the location-oblivious adversary.
//!
//! The object uses `ℓ + 1` array registers `R[1..ℓ+1]` (with `ℓ = ⌈log₂ n⌉`)
//! plus one `flag` register. `elect()`:
//!
//! ```text
//! 1  if flag.Read() = 1 return False
//! 2  flag.Write(1)
//! 3  choose x ∈ {1..ℓ} with Pr[x = i] = 2⁻ⁱ  (and 2^−(ℓ−1) at the cap)
//! 4  R[x].Write(1)
//! 5  if R[x+1].Read() = 0 return True
//! 6  return False
//! ```
//!
//! Lemma 2.2: step complexity O(1), space O(log n), and performance
//! parameter `f(k) ≤ 2·log₂ k + 6` against the location-oblivious
//! adversary — the adversary cannot see *which* `R[x]` a poised process
//! will write, so by deferred decisions the elected count is the number
//! of processes whose slot `x` is not followed by an earlier write to
//! `x + 1`. Experiment E1 regenerates this bound.

use rtas_sim::memory::Memory;
use rtas_sim::op::MemOp;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::{RegId, Word};

use super::GroupElect;

/// Descriptor of one geometric group election (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometricGroupElect {
    flag: RegId,
    /// `R[1..=ell+1]`, stored 0-based: `r_base.offset(i-1)` is `R[i]`.
    r_base: RegId,
    ell: u64,
}

impl GeometricGroupElect {
    /// Allocate a geometric group election sized for `n` processes
    /// (`ℓ = ⌈log₂ n⌉`, clamped to at least 1).
    pub fn new(memory: &mut Memory, n: usize, label: &str) -> Self {
        let ell = ceil_log2(n.max(2)) as u64;
        let regs = memory.alloc(ell + 2, label); // flag + R[1..=ell+1]
        GeometricGroupElect {
            flag: regs.get(0),
            r_base: regs.get(1),
            ell,
        }
    }

    /// Allocate with an explicit array parameter `ℓ` (ablation knob: the
    /// paper fixes `ℓ = ⌈log₂ n⌉`; smaller caps concentrate the geometric
    /// distribution and raise the elected count for large `k`).
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`.
    pub fn with_ell(memory: &mut Memory, ell: u64, label: &str) -> Self {
        assert!(ell >= 1, "ell must be at least 1");
        let regs = memory.alloc(ell + 2, label);
        GeometricGroupElect {
            flag: regs.get(0),
            r_base: regs.get(1),
            ell,
        }
    }

    /// The array length parameter `ℓ`.
    pub fn ell(&self) -> u64 {
        self.ell
    }

    /// Registers used: `ℓ + 2`.
    pub fn registers(&self) -> u64 {
        self.ell + 2
    }

    fn r(&self, index: Word) -> RegId {
        debug_assert!((1..=self.ell + 1).contains(&index));
        self.r_base.offset(index - 1)
    }
}

/// `⌈log₂ n⌉` for `n ≥ 1` (so `ceil_log2(5) == 3`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros()
}

impl GroupElect for GeometricGroupElect {
    fn elect(&self) -> Box<dyn Protocol> {
        Box::new(GeometricProtocol {
            ge: *self,
            state: State::Start,
            x: 0,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    ReadFlag,
    WroteFlag,
    WroteSlot,
    ReadNext,
}

#[derive(Debug)]
struct GeometricProtocol {
    ge: GeometricGroupElect,
    state: State,
    x: Word,
}

impl Protocol for GeometricProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        match self.state {
            State::Start => {
                self.state = State::ReadFlag;
                Poll::Op(MemOp::Read(self.ge.flag))
            }
            State::ReadFlag => {
                if input.read_value() == 1 {
                    return Poll::Done(ret::LOSE);
                }
                self.state = State::WroteFlag;
                Poll::Op(MemOp::Write(self.ge.flag, 1))
            }
            State::WroteFlag => {
                // Line 3: the geometric slot choice. This is the decision
                // the location-oblivious adversary cannot see.
                self.x = ctx.rng.geometric_capped(self.ge.ell);
                self.state = State::WroteSlot;
                Poll::Op(MemOp::Write(self.ge.r(self.x), 1))
            }
            State::WroteSlot => {
                self.state = State::ReadNext;
                Poll::Op(MemOp::Read(self.ge.r(self.x + 1)))
            }
            State::ReadNext => {
                if input.read_value() == 0 {
                    Poll::Done(ret::WIN)
                } else {
                    Poll::Done(ret::LOSE)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "geometric-group-elect"
    }
}

#[cfg(test)]
mod tests {
    use super::super::run_group_election;
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::explore::{explore, ExploreConfig};
    use rtas_sim::metrics::Aggregate;
    use rtas_sim::word::ProcessId;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn solo_caller_is_elected_in_four_steps() {
        let mut mem = Memory::new();
        let ge = GeometricGroupElect::new(&mut mem, 8, "ge");
        let res = Execution::new(mem, vec![ge.elect()], 1).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
        assert_eq!(res.steps().total(), 4);
    }

    #[test]
    fn at_least_one_elected_random_schedules() {
        for k in [2usize, 3, 8, 32] {
            for seed in 0..40 {
                let mut mem = Memory::new();
                let ge = GeometricGroupElect::new(&mut mem, k.max(2), "ge");
                let (elected, finished) = run_group_election(
                    mem,
                    &ge,
                    k,
                    seed,
                    &mut RandomSchedule::new(seed * 11 + k as u64),
                );
                assert_eq!(finished, k);
                assert!(elected >= 1, "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn exhaustive_two_processes_at_least_one_elected() {
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let ge = GeometricGroupElect::new(&mut mem, 4, "ge");
                (mem, (0..2).map(|_| ge.elect()).collect())
            },
            ExploreConfig::default(),
            |e| {
                assert!(e.all_finished());
                assert!(!e.with_outcome(ret::WIN).is_empty(), "{:?}", e.outcomes);
            },
        );
        assert_eq!(stats.truncated_paths, 0);
        assert!(stats.paths > 10);
    }

    #[test]
    fn performance_parameter_within_lemma_bound() {
        // Lemma 2.2: E[elected] ≤ 2·log₂ k + 6. Check the empirical mean
        // under random (oblivious) schedules with slack for sampling noise.
        for &k in &[4usize, 16, 64, 256] {
            let mut agg = Aggregate::new();
            for seed in 0..60 {
                let mut mem = Memory::new();
                let ge = GeometricGroupElect::new(&mut mem, 1024, "ge");
                let (elected, _) =
                    run_group_election(mem, &ge, k, seed, &mut RandomSchedule::new(seed * 31 + 7));
                agg.push(elected as f64);
            }
            let bound = 2.0 * (k as f64).log2() + 6.0;
            assert!(
                agg.mean() <= bound,
                "k={k}: mean elected {} > bound {bound}",
                agg.mean()
            );
        }
    }

    #[test]
    fn flag_shortcut_rejects_late_arrivals() {
        // Run one process to completion, then another: the second reads
        // flag == 1 and loses in one step.
        let mut mem = Memory::new();
        let ge = GeometricGroupElect::new(&mut mem, 4, "ge");
        let protos = vec![ge.elect(), ge.elect()];
        let mut adv = rtas_sim::adversary::ObliviousAdversary::new(
            rtas_sim::schedule::Schedule::from_pids([0, 0, 0, 0, 1]),
        )
        .then_fair();
        let res = Execution::new(mem, protos, 3).run(&mut adv);
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
        assert_eq!(res.outcome(ProcessId(1)), Some(ret::LOSE));
        assert_eq!(res.steps().of(ProcessId(1)), 1);
    }

    #[test]
    fn register_accounting_is_log_n() {
        let mut mem = Memory::new();
        let ge = GeometricGroupElect::new(&mut mem, 1024, "ge");
        assert_eq!(ge.ell(), 10);
        assert_eq!(mem.declared_registers(), 12);
        assert_eq!(ge.registers(), 12);
    }
}
