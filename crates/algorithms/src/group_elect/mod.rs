//! The Group Election primitive (Section 2.1).
//!
//! A `GroupElect` object provides `elect() → {True, False}`; if any
//! processes call it, at least one must get elected. Its quality is its
//! *performance parameter* `f`: the smallest function such that the
//! expected number of elected processes is at most `f(k)` when `k`
//! processes participate. The paper builds leader election from a ladder
//! of group elections (Lemma 2.1), so smaller `f` means a shorter ladder:
//!
//! * [`GeometricGroupElect`] (Figure 1) achieves `f(k) ≤ 2·log₂ k + 6`
//!   against the location-oblivious adversary (Lemma 2.2) — the
//!   ingredient of the O(log* k) algorithm;
//! * [`SiftingGroupElect`] (Alistarh–Aspnes) achieves
//!   `f(k) ≈ πk + 1/π` against the R/W-oblivious adversary — the
//!   ingredient of the O(log log k) algorithm;
//! * [`DummyGroupElect`] elects everyone using zero registers and zero
//!   steps — the tail filler that brings the O(log* k) algorithm's space
//!   down to O(n) (Theorem 2.3).

mod geometric;
mod sifter;

pub use geometric::{ceil_log2, GeometricGroupElect};
pub use sifter::SiftingGroupElect;

use rtas_sim::protocol::{boxed, ret, Const, Protocol};

/// A Group Election object.
///
/// `elect()` returns [`rtas_sim::protocol::ret::WIN`] (elected) or
/// [`rtas_sim::protocol::ret::LOSE`]. If one or more processes call
/// `elect()` and none crashes, at least one is elected.
pub trait GroupElect: Send + Sync {
    /// Build the per-process protocol performing one `elect()` call.
    fn elect(&self) -> Box<dyn Protocol>;
}

/// The trivial group election: everyone is elected, for free.
///
/// Theorem 2.3 replaces all but the first O(log n) geometric group
/// elections with dummies — with probability 1 − 1/n they are never
/// reached, and using them costs no registers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DummyGroupElect;

impl DummyGroupElect {
    /// A dummy group election.
    pub fn new() -> Self {
        DummyGroupElect
    }
}

impl GroupElect for DummyGroupElect {
    fn elect(&self) -> Box<dyn Protocol> {
        boxed(Const(ret::WIN))
    }
}

/// Measure a group election's elected count for one execution.
///
/// Runs `k` fresh `elect()` protocols under the given adversary and
/// returns `(elected, finished)` counts. Used by the Lemma 2.2 experiment
/// (E1) and the sifting-round experiment (E8).
pub fn run_group_election(
    mut memory: rtas_sim::memory::Memory,
    ge: &dyn GroupElect,
    k: usize,
    seed: u64,
    adversary: &mut dyn rtas_sim::adversary::Adversary,
) -> (usize, usize) {
    let _ = &mut memory;
    let protos = (0..k).map(|_| ge.elect()).collect();
    let res = rtas_sim::executor::Execution::new(memory, protos, seed).run(adversary);
    let elected = res.processes_with_outcome(ret::WIN).len();
    let finished = res.outcomes().iter().filter(|o| o.is_some()).count();
    (elected, finished)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::RoundRobin;
    use rtas_sim::executor::Execution;
    use rtas_sim::memory::Memory;
    use rtas_sim::word::ProcessId;

    #[test]
    fn dummy_elects_everyone_with_zero_steps() {
        let mem = Memory::new();
        let ge = DummyGroupElect::new();
        let protos = (0..5).map(|_| ge.elect()).collect();
        let res = Execution::new(mem, protos, 0).run(&mut RoundRobin::new(5));
        assert!(res.all_finished());
        for i in 0..5 {
            assert_eq!(res.outcome(ProcessId(i)), Some(ret::WIN));
        }
        assert_eq!(res.steps().total(), 0);
        assert_eq!(res.memory().declared_registers(), 0);
    }

    #[test]
    fn run_group_election_counts() {
        let mem = Memory::new();
        let (elected, finished) =
            run_group_election(mem, &DummyGroupElect::new(), 7, 0, &mut RoundRobin::new(7));
        assert_eq!(elected, 7);
        assert_eq!(finished, 7);
    }
}
