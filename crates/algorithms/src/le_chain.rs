//! Leader election from Group Elections (Section 2.1, Lemma 2.1).
//!
//! The ladder uses `n` levels, each with a group election `GE_i`, a
//! deterministic splitter `SP_i`, and a 2-process election `LE_i`:
//!
//! * a process runs `GE_1, GE_2, …`; losing any group election loses the
//!   leader election;
//! * an elected process calls `SP_i.split()`: `L` → lose, `R` → continue
//!   to level `i + 1`, `S` → *win the splitter* and stop descending;
//! * the splitter winner of level `i` climbs back through the 2-process
//!   elections `LE_i, LE_{i−1}, …, LE_1` (entering `LE_i` as role 0; the
//!   winner of `LE_{j+1}` enters `LE_j` as role 1). Winning `LE_1` wins
//!   the leader election.
//!
//! At most one process enters each `LE_j` per role: role 0 is `SP_j`'s
//! unique winner, role 1 is `LE_{j+1}`'s unique winner. If `j > 0`
//! processes call `GE_i.elect()`, at most `f(j) − 1` reach level `i + 1`
//! (the splitter always retires at least one), so with a performance
//! parameter `f(k) = 2·log k + 6` the expected ladder depth is
//! `Δ_{f−1}(k) = O(log* k)` (Lemma 2.1; experiment E10 checks the bound
//! numerically).
//!
//! The ladder is also the chassis of the adaptive sifting algorithm
//! (Theorem 2.4), which needs processes that exhaust a *short* ladder to
//! **overflow** to a bigger one instead of losing — hence
//! [`OverflowPolicy`].

use std::sync::Arc;

use rtas_primitives::{RoleLeaderElect, Splitter, SplitterObject, TwoProcessLe};
use rtas_sim::memory::Memory;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::Word;

use crate::group_elect::GroupElect;
use crate::LeaderElect;

/// Outcome values of a chain `elect()` (as `Word`s).
pub mod chain_ret {
    use rtas_sim::word::Word;

    /// Lost the leader election.
    pub const LOSE: Word = rtas_sim::protocol::ret::LOSE;
    /// Won the leader election (won `LE_1`).
    pub const WIN: Word = rtas_sim::protocol::ret::WIN;
    /// Passed every level without losing or winning a splitter
    /// (only with [`super::OverflowPolicy::Overflow`]).
    pub const OVERFLOW: Word = 2;
}

/// Typed view of a chain outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainOutcome {
    /// Lost the leader election.
    Lose,
    /// Won the leader election.
    Win,
    /// Fell off the end of the ladder (overflow policy only).
    Overflow,
}

impl ChainOutcome {
    /// Decode a protocol result word.
    ///
    /// # Panics
    ///
    /// Panics on an unknown value.
    pub fn from_word(w: Word) -> ChainOutcome {
        match w {
            chain_ret::LOSE => ChainOutcome::Lose,
            chain_ret::WIN => ChainOutcome::Win,
            chain_ret::OVERFLOW => ChainOutcome::Overflow,
            other => panic!("invalid chain outcome {other}"),
        }
    }
}

/// What happens to a process that passes the last level still alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// It loses (sound when the ladder has ≥ n levels, since each level
    /// retires at least one process — the Theorem 2.3 configuration).
    Lose,
    /// It returns [`chain_ret::OVERFLOW`] so a wrapper can move it to the
    /// next structure (the Theorem 2.4 configuration).
    Overflow,
}

struct Level {
    ge: Arc<dyn GroupElect>,
    sp: Splitter,
    le: TwoProcessLe,
}

/// The ladder structure: one [`GroupElect`] + splitter + 2-process LE per
/// level.
#[derive(Clone)]
pub struct LeChain {
    levels: Arc<Vec<Level>>,
    policy: OverflowPolicy,
}

impl std::fmt::Debug for LeChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeChain")
            .field("levels", &self.levels.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl LeChain {
    /// Build a ladder from the given group elections (one level per
    /// element), allocating the splitters and 2-process elections.
    ///
    /// # Panics
    ///
    /// Panics if `ges` is empty.
    pub fn new(
        memory: &mut Memory,
        ges: Vec<Arc<dyn GroupElect>>,
        policy: OverflowPolicy,
        label: &str,
    ) -> Self {
        assert!(!ges.is_empty(), "a chain needs at least one level");
        let levels = ges
            .into_iter()
            .map(|ge| Level {
                ge,
                sp: Splitter::new(memory, label),
                le: TwoProcessLe::new(memory, label),
            })
            .collect();
        LeChain {
            levels: Arc::new(levels),
            policy,
        }
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Registers used by the splitters and 2-process elections
    /// (4 per level; group elections account separately).
    pub fn ladder_registers(&self) -> u64 {
        self.levels.len() as u64 * (Splitter::REGISTERS + TwoProcessLe::REGISTERS)
    }

    /// Build the `elect()` protocol.
    pub fn elect(&self) -> Box<dyn Protocol> {
        Box::new(ChainProtocol {
            chain: self.clone(),
            state: State::Descend,
            level: 0,
            role: 0,
        })
    }
}

impl LeaderElect for LeChain {
    fn elect(&self) -> Box<dyn Protocol> {
        LeChain::elect(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// About to run `GE_level`.
    Descend,
    /// Waiting for `GE_level.elect()`.
    AfterGe,
    /// Waiting for `SP_level.split()`.
    AfterSplit,
    /// About to run `LE_level` as `role`.
    Climb,
    /// Waiting for `LE_level.elect_as(role)`.
    AfterClimb,
}

struct ChainProtocol {
    chain: LeChain,
    state: State,
    level: usize,
    role: usize,
}

impl Protocol for ChainProtocol {
    fn resume(&mut self, input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
        loop {
            match self.state {
                State::Descend => {
                    self.state = State::AfterGe;
                    return Poll::Call(self.chain.levels[self.level].ge.elect());
                }
                State::AfterGe => {
                    if input.child_value() == ret::LOSE {
                        return Poll::Done(chain_ret::LOSE);
                    }
                    self.state = State::AfterSplit;
                    return Poll::Call(self.chain.levels[self.level].sp.split());
                }
                State::AfterSplit => {
                    match input.child_value() {
                        v if v == ret::SPLIT_LEFT => return Poll::Done(chain_ret::LOSE),
                        v if v == ret::SPLIT_STOP => {
                            self.role = 0;
                            self.state = State::Climb;
                            // fall through the loop to Climb
                        }
                        v if v == ret::SPLIT_RIGHT => {
                            self.level += 1;
                            if self.level == self.chain.levels.len() {
                                return match self.chain.policy {
                                    OverflowPolicy::Lose => Poll::Done(chain_ret::LOSE),
                                    OverflowPolicy::Overflow => Poll::Done(chain_ret::OVERFLOW),
                                };
                            }
                            self.state = State::Descend;
                        }
                        other => panic!("invalid splitter result {other}"),
                    }
                }
                State::Climb => {
                    self.state = State::AfterClimb;
                    return Poll::Call(self.chain.levels[self.level].le.elect_as(self.role));
                }
                State::AfterClimb => {
                    if input.child_value() == ret::LOSE {
                        return Poll::Done(chain_ret::LOSE);
                    }
                    if self.level == 0 {
                        return Poll::Done(chain_ret::WIN);
                    }
                    self.level -= 1;
                    self.role = 1;
                    self.state = State::Climb;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "le-chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_elect::{DummyGroupElect, GeometricGroupElect};
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::word::ProcessId;

    fn dummy_chain(memory: &mut Memory, levels: usize) -> LeChain {
        let ges: Vec<Arc<dyn GroupElect>> = (0..levels)
            .map(|_| Arc::new(DummyGroupElect::new()) as Arc<dyn GroupElect>)
            .collect();
        LeChain::new(memory, ges, OverflowPolicy::Lose, "chain")
    }

    fn geometric_chain(memory: &mut Memory, n: usize) -> LeChain {
        let ges: Vec<Arc<dyn GroupElect>> = (0..n)
            .map(|_| Arc::new(GeometricGroupElect::new(memory, n, "ge")) as Arc<dyn GroupElect>)
            .collect();
        LeChain::new(memory, ges, OverflowPolicy::Lose, "chain")
    }

    #[test]
    fn chain_outcome_roundtrip() {
        assert_eq!(ChainOutcome::from_word(chain_ret::WIN), ChainOutcome::Win);
        assert_eq!(ChainOutcome::from_word(chain_ret::LOSE), ChainOutcome::Lose);
        assert_eq!(
            ChainOutcome::from_word(chain_ret::OVERFLOW),
            ChainOutcome::Overflow
        );
    }

    #[test]
    #[should_panic(expected = "invalid chain outcome")]
    fn bad_outcome_panics() {
        let _ = ChainOutcome::from_word(9);
    }

    #[test]
    fn solo_process_wins() {
        let mut mem = Memory::new();
        let chain = dummy_chain(&mut mem, 4);
        let res = Execution::new(mem, vec![chain.elect()], 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(chain_ret::WIN));
    }

    #[test]
    fn unique_winner_dummy_chain_random_schedules() {
        for k in [2usize, 3, 6, 12] {
            for seed in 0..50 {
                let mut mem = Memory::new();
                // With dummy GEs, each level retires ≥1 process via the
                // splitter, so k levels always suffice.
                let chain = dummy_chain(&mut mem, k);
                let protos = (0..k).map(|_| chain.elect()).collect();
                let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 5));
                assert!(res.all_finished(), "k={k} seed={seed}");
                assert_eq!(
                    res.processes_with_outcome(chain_ret::WIN).len(),
                    1,
                    "k={k} seed={seed}: {:?}",
                    res.outcomes()
                );
            }
        }
    }

    #[test]
    fn unique_winner_geometric_chain_random_schedules() {
        for k in [2usize, 5, 16] {
            for seed in 0..40 {
                let mut mem = Memory::new();
                let chain = geometric_chain(&mut mem, k.max(4));
                let protos = (0..k).map(|_| chain.elect()).collect();
                let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 9));
                assert!(res.all_finished(), "k={k} seed={seed}");
                assert_eq!(
                    res.processes_with_outcome(chain_ret::WIN).len(),
                    1,
                    "k={k} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn overflow_policy_reports_fall_off() {
        // One level, two processes: with a dummy GE both get elected; the
        // splitter lets at most one through to level 2 = overflow.
        let mut mem = Memory::new();
        let ges: Vec<Arc<dyn GroupElect>> = vec![Arc::new(DummyGroupElect::new())];
        let chain = LeChain::new(&mut mem, ges, OverflowPolicy::Overflow, "chain");
        let mut overflow_seen = false;
        for seed in 0..60 {
            let mut mem = Memory::new();
            let ges: Vec<Arc<dyn GroupElect>> = vec![Arc::new(DummyGroupElect::new())];
            let chain2 = LeChain::new(&mut mem, ges, OverflowPolicy::Overflow, "chain");
            let protos = (0..2).map(|_| chain2.elect()).collect();
            let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed));
            assert!(res.all_finished());
            let overflows = res.processes_with_outcome(chain_ret::OVERFLOW).len();
            let wins = res.processes_with_outcome(chain_ret::WIN).len();
            assert!(wins <= 1);
            overflow_seen |= overflows > 0;
        }
        let _ = chain;
        assert!(overflow_seen, "no overflow in 60 runs of a 1-level chain");
    }

    #[test]
    fn ladder_register_accounting() {
        let mut mem = Memory::new();
        let chain = dummy_chain(&mut mem, 10);
        assert_eq!(chain.levels(), 10);
        assert_eq!(chain.ladder_registers(), 40);
        assert_eq!(mem.declared_registers(), 40);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_chain_panics() {
        let mut mem = Memory::new();
        let _ = LeChain::new(&mut mem, Vec::new(), OverflowPolicy::Lose, "chain");
    }

    #[test]
    fn steps_stay_small_for_moderate_contention() {
        // Sanity check of the O(Δ_{f−1}(k)) behaviour: with k = 32 the
        // expected max steps should be well below the Ω(k) regime.
        let k = 32;
        let mut total = 0u64;
        let trials = 30;
        for seed in 0..trials {
            let mut mem = Memory::new();
            let chain = geometric_chain(&mut mem, k);
            let protos = (0..k).map(|_| chain.elect()).collect();
            let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed + 2));
            assert!(res.all_finished());
            total += res.steps().max();
        }
        let mean = total as f64 / trials as f64;
        assert!(mean < 60.0, "mean max steps {mean}");
    }
}
