//! The space-efficient RatRace (Section 3.2): Θ(n) registers, O(log k)
//! expected steps against the adaptive adversary.
//!
//! Structure:
//!
//! * a complete binary **primary tree** of height `⌈log₂ n⌉`, each node
//!   holding a randomized splitter and a 3-process leader election;
//! * `⌈leaves / log n⌉` **overflow elimination paths** of length
//!   `4·⌈log₂ n⌉`; a process that falls off leaf `j` enters path
//!   `⌊j / log n⌋`; the winner of path `i` re-enters the tree at leaf `i`
//!   and climbs;
//! * one length-`n` **backup elimination path** for processes that fall
//!   off an overflow path (Claims 3.1/3.2 make this w.h.p. unreachable);
//! * a top-level 2-process election between the tree winner and the
//!   backup winner.
//!
//! Descent: at node `v`, try `RSplitter_v`; `S` stops and climbs, `L`/`R`
//! move to the corresponding child. Climb: win the 3-process election of
//! every node back to the root (role 2 where the splitter was won, role
//! 0/1 at ancestors according to the child the process came from; an
//! overflow-path winner enters its leaf as role 0).

use std::sync::Arc;

use rtas_primitives::{RSplitter, RoleLeaderElect, SplitterObject, ThreeProcessLe, TwoProcessLe};
use rtas_sim::memory::Memory;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};

use crate::elimination_path::{path_ret, EliminationPath};
use crate::group_elect::ceil_log2;
use crate::LeaderElect;

struct TreeNode {
    rsp: RSplitter,
    le: ThreeProcessLe,
}

struct Structure {
    /// Heap-ordered nodes, 1-based: root is `nodes[1]`, children of `i`
    /// are `2i` and `2i + 1`. `nodes[0]` is unused padding.
    nodes: Vec<TreeNode>,
    height: u32,
    /// First leaf index: `2^height`.
    leaf_base: usize,
    paths: Vec<EliminationPath>,
    backup: EliminationPath,
    letop: TwoProcessLe,
    /// `⌈log₂ n⌉` used for the leaf → path mapping.
    log_n: usize,
}

/// The Section 3.2 leader election.
#[derive(Clone)]
pub struct SpaceEfficientRatRace {
    s: Arc<Structure>,
    n: usize,
}

impl std::fmt::Debug for SpaceEfficientRatRace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpaceEfficientRatRace")
            .field("n", &self.n)
            .field("height", &self.s.height)
            .field("paths", &self.s.paths.len())
            .finish()
    }
}

impl SpaceEfficientRatRace {
    /// Build the structure for up to `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(memory: &mut Memory, n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let n_eff = n.max(2);
        let height = ceil_log2(n_eff);
        let leaves = 1usize << height;
        let node_count = 2 * leaves; // indices 1 .. 2*leaves - 1, plus pad 0
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(TreeNode {
                rsp: RSplitter::new(memory, "ratrace-tree"),
                le: ThreeProcessLe::new(memory, "ratrace-tree"),
            });
        }
        let log_n = (height as usize).max(1);
        let num_paths = leaves.div_ceil(log_n);
        let path_len = 4 * log_n;
        let paths = (0..num_paths)
            .map(|_| EliminationPath::new(memory, path_len, "ratrace-overflow-path"))
            .collect();
        let backup = EliminationPath::new(memory, n_eff, "ratrace-backup-path");
        let letop = TwoProcessLe::new(memory, "ratrace-letop");
        SpaceEfficientRatRace {
            s: Arc::new(Structure {
                nodes,
                height,
                leaf_base: leaves,
                paths,
                backup,
                letop,
                log_n,
            }),
            n,
        }
    }

    /// Maximum number of participating processes.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Primary-tree height.
    pub fn height(&self) -> u32 {
        self.s.height
    }

    /// Number of overflow elimination paths.
    pub fn overflow_paths(&self) -> usize {
        self.s.paths.len()
    }

    /// Build the per-process `elect()` protocol.
    pub fn elect(&self) -> Box<dyn Protocol> {
        Box::new(RatRaceProtocol {
            rr: self.clone(),
            state: State::Split,
            node: 1,
            role: 2,
        })
    }
}

impl LeaderElect for SpaceEfficientRatRace {
    fn elect(&self) -> Box<dyn Protocol> {
        SpaceEfficientRatRace::elect(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// About to try the splitter at `node`.
    Split,
    /// Waiting for the splitter at `node`.
    AfterSplit,
    /// About to enter the overflow path for leaf `node`.
    EnterPath,
    /// Waiting for the overflow path (index stored in `node`).
    AfterPath,
    /// Waiting for the backup path.
    AfterBackup,
    /// About to play the 3-process election at `node` as `role`.
    Climb,
    /// Waiting for the 3-process election at `node`.
    AfterClimb,
    /// Waiting for the top 2-process election.
    AfterTop,
}

struct RatRaceProtocol {
    rr: SpaceEfficientRatRace,
    state: State,
    /// Current tree node (heap index) or path index, depending on state.
    node: usize,
    /// Role for the next 3-process election.
    role: usize,
}

impl Protocol for RatRaceProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        let s = &self.rr.s;
        loop {
            match self.state {
                State::Split => {
                    self.state = State::AfterSplit;
                    return Poll::Call(s.nodes[self.node].rsp.split());
                }
                State::AfterSplit => {
                    match input.child_value() {
                        v if v == ret::SPLIT_STOP => {
                            ctx.notes.won_splitter = true;
                            self.role = 2;
                            self.state = State::Climb;
                        }
                        v => {
                            let child = 2 * self.node + usize::from(v == ret::SPLIT_RIGHT);
                            if child >= s.nodes.len() {
                                // Fell off a leaf: leaf index j, enter
                                // overflow path ⌊j / log n⌋.
                                let leaf_j = self.node - s.leaf_base;
                                self.node = (leaf_j / s.log_n).min(s.paths.len() - 1);
                                self.state = State::EnterPath;
                            } else {
                                self.node = child;
                                self.state = State::Split;
                            }
                        }
                    }
                }
                State::EnterPath => {
                    self.state = State::AfterPath;
                    return Poll::Call(s.paths[self.node].enter());
                }
                State::AfterPath => match input.child_value() {
                    v if v == path_ret::WIN => {
                        // Re-enter the tree at leaf `path index` as role 0.
                        self.node += s.leaf_base;
                        self.role = 0;
                        self.state = State::Climb;
                    }
                    v if v == path_ret::LOSE => return Poll::Done(ret::LOSE),
                    v if v == path_ret::FELL_OFF => {
                        self.state = State::AfterBackup;
                        return Poll::Call(s.backup.enter());
                    }
                    other => panic!("invalid path result {other}"),
                },
                State::AfterBackup => match input.child_value() {
                    v if v == path_ret::WIN => {
                        self.state = State::AfterTop;
                        return Poll::Call(s.letop.elect_as(1));
                    }
                    v if v == path_ret::LOSE => return Poll::Done(ret::LOSE),
                    v if v == path_ret::FELL_OFF => {
                        // Unreachable with k ≤ n entrants (Claim 3.1);
                        // losing is the safe fallback.
                        debug_assert!(false, "backup path overflow with k <= n");
                        return Poll::Done(ret::LOSE);
                    }
                    other => panic!("invalid backup result {other}"),
                },
                State::Climb => {
                    self.state = State::AfterClimb;
                    return Poll::Call(s.nodes[self.node].le.elect_as(self.role));
                }
                State::AfterClimb => {
                    if input.child_value() == ret::LOSE {
                        return Poll::Done(ret::LOSE);
                    }
                    if self.node == 1 {
                        self.state = State::AfterTop;
                        return Poll::Call(s.letop.elect_as(0));
                    }
                    // Move to the parent; the role encodes which child we
                    // came from (even heap index = left child = role 0).
                    self.role = self.node % 2;
                    self.node /= 2;
                    self.state = State::Climb;
                }
                State::AfterTop => return Poll::Done(input.child_value()),
            }
        }
    }

    fn name(&self) -> &'static str {
        "space-efficient-ratrace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{AdversaryClass, FnAdversary, RandomSchedule, RoundRobin, View};
    use rtas_sim::executor::Execution;
    use rtas_sim::word::ProcessId;

    #[test]
    fn solo_process_wins() {
        let mut mem = Memory::new();
        let rr = SpaceEfficientRatRace::new(&mut mem, 8);
        let res = Execution::new(mem, vec![rr.elect()], 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
    }

    #[test]
    fn unique_winner_random_schedules() {
        for k in [2usize, 3, 8, 24] {
            for seed in 0..40 {
                let mut mem = Memory::new();
                let rr = SpaceEfficientRatRace::new(&mut mem, k);
                let protos = (0..k).map(|_| rr.elect()).collect();
                let res =
                    Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 17));
                assert!(res.all_finished(), "k={k} seed={seed}");
                assert_eq!(
                    res.processes_with_outcome(ret::WIN).len(),
                    1,
                    "k={k} seed={seed}: {:?}",
                    res.outcomes()
                );
            }
        }
    }

    #[test]
    fn unique_winner_lockstep() {
        for k in [2usize, 5, 16] {
            for seed in 0..20 {
                let mut mem = Memory::new();
                let rr = SpaceEfficientRatRace::new(&mut mem, k);
                let protos = (0..k).map(|_| rr.elect()).collect();
                let res = Execution::new(mem, protos, seed).run(&mut RoundRobin::new(k));
                assert!(res.all_finished());
                assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
            }
        }
    }

    #[test]
    fn unique_winner_adaptive_laggard() {
        for seed in 0..30 {
            let k = 6;
            let mut mem = Memory::new();
            let rr = SpaceEfficientRatRace::new(&mut mem, k);
            let protos = (0..k).map(|_| rr.elect()).collect();
            let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
                view.active().into_iter().min_by_key(|&p| view.steps_of(p))
            });
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            assert!(res.all_finished());
            assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
        }
    }

    #[test]
    fn space_is_linear() {
        // Θ(n): tree ≈ 2n·6 + paths ≈ n·4·(4+?) … well within c·n.
        for n in [64usize, 256, 1024] {
            let mut mem = Memory::new();
            let _rr = SpaceEfficientRatRace::new(&mut mem, n);
            let declared = mem.declared_registers();
            assert!(
                declared <= 40 * n as u64 + 200,
                "n={n}: {declared} registers not Θ(n)"
            );
        }
    }

    #[test]
    fn space_grows_linearly_not_cubically() {
        let declared_for = |n: usize| {
            let mut mem = Memory::new();
            let _rr = SpaceEfficientRatRace::new(&mut mem, n);
            mem.declared_registers()
        };
        let d64 = declared_for(64);
        let d512 = declared_for(512);
        // Linear growth: ×8 input → ≈×8 output (allow 2× slack), far from ×512.
        assert!(d512 < d64 * 16, "d64={d64} d512={d512}");
    }

    #[test]
    fn crashed_majority_still_yields_winner_among_survivors() {
        // Only P0 and P1 ever run; the rest crash before their first step.
        let k = 8;
        let mut mem = Memory::new();
        let rr = SpaceEfficientRatRace::new(&mut mem, k);
        let protos = (0..k).map(|_| rr.elect()).collect();
        let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
            [ProcessId(0), ProcessId(1)]
                .into_iter()
                .find(|&p| view.is_active(p))
        });
        let res = Execution::new(mem, protos, 3).run(&mut adv);
        assert!(res.outcome(ProcessId(0)).is_some());
        assert!(res.outcome(ProcessId(1)).is_some());
        assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
    }

    #[test]
    fn mean_steps_logarithmic() {
        let mean_for = |k: usize| {
            let trials = 15u64;
            let mut total = 0u64;
            for seed in 0..trials {
                let mut mem = Memory::new();
                let rr = SpaceEfficientRatRace::new(&mut mem, k);
                let protos = (0..k).map(|_| rr.elect()).collect();
                let res =
                    Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed + 23));
                assert!(res.all_finished());
                total += res.steps().max();
            }
            total as f64 / trials as f64
        };
        let m8 = mean_for(8);
        let m64 = mean_for(64);
        // O(log k): going 8 → 64 should far less than 8× the steps.
        assert!(m64 < m8 * 4.0, "m8={m8} m64={m64}");
    }
}
