//! RatRace (Alistarh, Attiya, Gilbert, Giurgiu & Guerraoui, DISC 2010) and
//! the paper's space-efficient redesign (Section 3).
//!
//! Both variants are adaptive leader elections with O(log k) expected step
//! complexity (also w.h.p.) against the **adaptive** adversary. They differ
//! only in space:
//!
//! * [`OriginalRatRace`] — primary tree of height `3·log n` (Θ(n³)
//!   registers) plus an `n × n` backup grid (Θ(n²) registers). The huge
//!   structures are lazily materialized, so the simulator can declare them
//!   while only paying for what executions touch — which is exactly the
//!   Θ(n³)-declared vs O(k·polylog) -touched contrast experiment E4
//!   tabulates.
//! * [`SpaceEfficientRatRace`] — the paper's contribution: a tree of
//!   height `log n`, `n / log n` elimination paths of length `4·log n`
//!   for leaf overflow, and one length-`n` backup elimination path;
//!   Θ(n) registers total.

mod original;
mod space_efficient;

pub use original::OriginalRatRace;
pub use space_efficient::SpaceEfficientRatRace;
