//! The original RatRace (Section 3.1): Θ(n³) registers.
//!
//! * **Primary tree** of height `3·log₂ n` — Θ(n³) nodes, each with a
//!   randomized splitter and a 3-process election. Registers are lazily
//!   materialized: the structure *declares* Θ(n³) registers (the paper's
//!   space complexity) but an execution only touches O(k·log k).
//! * **Backup grid** `n × n` — node `(i, j)` has a deterministic splitter
//!   and a 3-process election; children are `(i+1, j)` (on `L`) and
//!   `(i, j+1)` (on `R`). A process that falls off a tree leaf enters at
//!   `(0, 0)`, descends until it wins a splitter (guaranteed before it
//!   leaves the grid), then climbs back along its own descent path.
//! * The tree winner and the grid winner meet in a 2-process election.
//!
//! This implementation exists as the baseline for experiment E4's space
//! table (Θ(n³) declared vs Θ(n) for the Section 3.2 redesign) and for
//! step-complexity cross-checks.

use std::sync::Arc;

use rtas_primitives::{
    RSplitter, RoleLeaderElect, Splitter, SplitterObject, ThreeProcessLe, TwoProcessLe,
};
use rtas_sim::memory::{Memory, RegRange};
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};

use crate::group_elect::ceil_log2;
use crate::LeaderElect;

/// Registers per tree/grid node: one randomized/deterministic splitter (2)
/// plus one 3-process election (4).
const NODE_REGS: u64 = 6;

struct Structure {
    tree: RegRange,
    tree_height: u32,
    /// Number of tree nodes (heap indices `1 ..= tree_nodes`).
    tree_nodes: u64,
    grid: RegRange,
    n: u64,
    letop: TwoProcessLe,
}

impl Structure {
    fn tree_node(&self, heap_index: u64) -> (RSplitter, ThreeProcessLe) {
        debug_assert!((1..=self.tree_nodes).contains(&heap_index));
        let base = self.tree.sub((heap_index - 1) * NODE_REGS, NODE_REGS);
        (
            RSplitter::from_range(base.sub(0, 2)),
            ThreeProcessLe::from_range(base.sub(2, 4)),
        )
    }

    fn grid_node(&self, i: u64, j: u64) -> (Splitter, ThreeProcessLe) {
        debug_assert!(i < self.n && j < self.n);
        let base = self.grid.sub((i * self.n + j) * NODE_REGS, NODE_REGS);
        (
            Splitter::from_range(base.sub(0, 2)),
            ThreeProcessLe::from_range(base.sub(2, 4)),
        )
    }
}

/// The original RatRace leader election.
#[derive(Clone)]
pub struct OriginalRatRace {
    s: Arc<Structure>,
    capacity: usize,
}

impl std::fmt::Debug for OriginalRatRace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OriginalRatRace")
            .field("n", &self.capacity)
            .field("tree_height", &self.s.tree_height)
            .finish()
    }
}

impl OriginalRatRace {
    /// Build (declare) the structure for up to `n` processes.
    ///
    /// Declares Θ(n³) registers; host memory is only consumed for touched
    /// registers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(memory: &mut Memory, n: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let n_eff = (n.max(2)) as u64;
        let tree_height = 3 * ceil_log2(n_eff as usize);
        let tree_nodes = (1u64 << (tree_height + 1)) - 1;
        let tree = memory.alloc_lazy(tree_nodes * NODE_REGS, "ratrace-orig-tree");
        let grid = memory.alloc_lazy(n_eff * n_eff * NODE_REGS, "ratrace-orig-grid");
        let letop = TwoProcessLe::new(memory, "ratrace-orig-letop");
        OriginalRatRace {
            s: Arc::new(Structure {
                tree,
                tree_height,
                tree_nodes,
                grid,
                n: n_eff,
                letop,
            }),
            capacity: n,
        }
    }

    /// Maximum number of participating processes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Height of the primary tree (`3·⌈log₂ n⌉`).
    pub fn tree_height(&self) -> u32 {
        self.s.tree_height
    }

    /// Total declared registers (Θ(n³)).
    pub fn declared_registers(&self) -> u64 {
        self.s.tree_nodes * NODE_REGS + self.s.n * self.s.n * NODE_REGS + TwoProcessLe::REGISTERS
    }

    /// Build the per-process `elect()` protocol.
    pub fn elect(&self) -> Box<dyn Protocol> {
        Box::new(OriginalProtocol {
            rr: self.clone(),
            state: State::TreeSplit,
            node: 1,
            role: 2,
            gi: 0,
            gj: 0,
            grid_path: Vec::new(),
        })
    }
}

impl LeaderElect for OriginalRatRace {
    fn elect(&self) -> Box<dyn Protocol> {
        OriginalRatRace::elect(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    TreeSplit,
    AfterTreeSplit,
    TreeClimb,
    AfterTreeClimb,
    GridSplit,
    AfterGridSplit,
    GridClimb,
    AfterGridClimb,
    AfterTop,
}

struct OriginalProtocol {
    rr: OriginalRatRace,
    state: State,
    /// Tree heap index during tree phases.
    node: u64,
    /// Role for the next 3-process election.
    role: usize,
    /// Grid coordinates during grid phases.
    gi: u64,
    gj: u64,
    /// Descent path through the grid: `true` = moved down (`L`, i+1),
    /// `false` = moved right (`R`, j+1). Needed to climb back.
    grid_path: Vec<bool>,
}

impl Protocol for OriginalProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        let s = Arc::clone(&self.rr.s);
        loop {
            match self.state {
                State::TreeSplit => {
                    self.state = State::AfterTreeSplit;
                    return Poll::Call(s.tree_node(self.node).0.split());
                }
                State::AfterTreeSplit => match input.child_value() {
                    v if v == ret::SPLIT_STOP => {
                        ctx.notes.won_splitter = true;
                        self.role = 2;
                        self.state = State::TreeClimb;
                    }
                    v => {
                        let child = 2 * self.node + u64::from(v == ret::SPLIT_RIGHT);
                        if child > s.tree_nodes {
                            // Fell off the tree: enter the grid at (0,0).
                            self.gi = 0;
                            self.gj = 0;
                            self.grid_path.clear();
                            self.state = State::GridSplit;
                        } else {
                            self.node = child;
                            self.state = State::TreeSplit;
                        }
                    }
                },
                State::TreeClimb => {
                    self.state = State::AfterTreeClimb;
                    return Poll::Call(s.tree_node(self.node).1.elect_as(self.role));
                }
                State::AfterTreeClimb => {
                    if input.child_value() == ret::LOSE {
                        return Poll::Done(ret::LOSE);
                    }
                    if self.node == 1 {
                        self.state = State::AfterTop;
                        return Poll::Call(s.letop.elect_as(0));
                    }
                    self.role = (self.node % 2) as usize;
                    self.node /= 2;
                    self.state = State::TreeClimb;
                }
                State::GridSplit => {
                    self.state = State::AfterGridSplit;
                    return Poll::Call(s.grid_node(self.gi, self.gj).0.split());
                }
                State::AfterGridSplit => match input.child_value() {
                    v if v == ret::SPLIT_STOP => {
                        ctx.notes.won_splitter = true;
                        self.role = 2;
                        self.state = State::GridClimb;
                    }
                    v if v == ret::SPLIT_LEFT => {
                        // Deterministic splitters guarantee a win before the
                        // grid's edge for k ≤ n processes.
                        assert!(self.gi + 1 < s.n, "fell off the grid (L edge)");
                        self.gi += 1;
                        self.grid_path.push(true);
                        self.state = State::GridSplit;
                    }
                    v if v == ret::SPLIT_RIGHT => {
                        assert!(self.gj + 1 < s.n, "fell off the grid (R edge)");
                        self.gj += 1;
                        self.grid_path.push(false);
                        self.state = State::GridSplit;
                    }
                    other => panic!("invalid splitter result {other}"),
                },
                State::GridClimb => {
                    self.state = State::AfterGridClimb;
                    return Poll::Call(s.grid_node(self.gi, self.gj).1.elect_as(self.role));
                }
                State::AfterGridClimb => {
                    if input.child_value() == ret::LOSE {
                        return Poll::Done(ret::LOSE);
                    }
                    match self.grid_path.pop() {
                        None => {
                            // Back at (0,0): grid winner.
                            self.state = State::AfterTop;
                            return Poll::Call(s.letop.elect_as(1));
                        }
                        Some(went_down) => {
                            if went_down {
                                self.gi -= 1;
                                self.role = 0;
                            } else {
                                self.gj -= 1;
                                self.role = 1;
                            }
                            self.state = State::GridClimb;
                        }
                    }
                }
                State::AfterTop => return Poll::Done(input.child_value()),
            }
        }
    }

    fn name(&self) -> &'static str {
        "original-ratrace"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::word::ProcessId;

    #[test]
    fn solo_process_wins() {
        let mut mem = Memory::new();
        let rr = OriginalRatRace::new(&mut mem, 8);
        let res = Execution::new(mem, vec![rr.elect()], 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
    }

    #[test]
    fn unique_winner_random_schedules() {
        for k in [2usize, 4, 12] {
            for seed in 0..30 {
                let mut mem = Memory::new();
                let rr = OriginalRatRace::new(&mut mem, k);
                let protos = (0..k).map(|_| rr.elect()).collect();
                let res =
                    Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 29));
                assert!(res.all_finished(), "k={k} seed={seed}");
                assert_eq!(
                    res.processes_with_outcome(ret::WIN).len(),
                    1,
                    "k={k} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn declared_space_is_cubic_but_touched_is_small() {
        let mut mem = Memory::new();
        let rr = OriginalRatRace::new(&mut mem, 64);
        let declared = mem.declared_registers();
        // 3·log₂ 64 = 18 → 2^19 − 1 nodes ≈ 5·10⁵ · 6 regs plus 64² grid.
        assert!(declared > 3_000_000, "declared {declared}");
        assert_eq!(declared, rr.declared_registers());
        let protos = (0..8).map(|_| rr.elect()).collect();
        let res = Execution::new(mem, protos, 1).run(&mut RandomSchedule::new(2));
        assert!(res.all_finished());
        let touched = res.memory().touched_registers();
        assert!(touched < 3_000, "touched {touched} registers for k=8");
    }

    #[test]
    fn tree_height_is_three_log_n() {
        let mut mem = Memory::new();
        let rr = OriginalRatRace::new(&mut mem, 64);
        assert_eq!(rr.tree_height(), 18);
    }

    #[test]
    fn grid_handles_forced_collisions() {
        // Lockstep maximizes splitter collisions and exercises the grid
        // path-climb logic when processes fall off the (short) tree of a
        // tiny instance.
        for seed in 0..20 {
            let k = 4;
            let mut mem = Memory::new();
            let rr = OriginalRatRace::new(&mut mem, k);
            let protos = (0..k).map(|_| rr.elect()).collect();
            let res = Execution::new(mem, protos, seed).run(&mut RoundRobin::new(k));
            assert!(res.all_finished());
            assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
        }
    }
}
