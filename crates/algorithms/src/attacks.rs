//! Concrete adaptive-adversary strategies.
//!
//! The paper's Section 4 is motivated by the observation that the
//! O(log* k) algorithm of Theorem 2.3 collapses to Ω(k) steps under an
//! **adaptive** adversary. [`AscendingWriteAttack`] is a concrete such
//! strategy (experiment E9):
//!
//! * it keeps every process elected in every geometric group election by
//!   ordering the array writes of Figure 1 in ascending register order
//!   and letting each process perform its write and its check-read
//!   back-to-back — a process writing `R[x]` then reads `R[x+1]` before
//!   any later (higher-slot) write can land, so it always sees 0;
//! * at the splitters it batches all `X`-writes before the door phase, so
//!   exactly one process stops per level and the other `k − 1` continue.
//!
//! The result: the cohort shrinks by one per level, and the last
//! survivor pays Θ(k) steps. The same strategy leaves RatRace's O(log k)
//! bound intact, which is exactly the gap Theorem 4.1's combiner closes
//! (experiment E5).

use rtas_sim::adversary::{AdversaryClass, Strategy, View};
use rtas_sim::op::OpKind;
use rtas_sim::scenario::StrategySpec;
use rtas_sim::word::ProcessId;

/// The ascending-write adaptive strategy (see module docs).
///
/// Scheduling rule, in priority order:
///
/// 1. if the last-scheduled process is now poised on a **read**, schedule
///    it again — this welds each write to its check-read, so a Figure 1
///    participant reads `R[x+1]` before any higher slot is written;
/// 2. otherwise, among the active processes with the **fewest steps**
///    (keeping the cohort in phase lockstep): those poised on a write
///    with the smallest register id first, then those poised on a read
///    with the smallest register id.
#[derive(Debug, Clone, Default)]
pub struct AscendingWriteAttack {
    last: Option<ProcessId>,
}

impl AscendingWriteAttack {
    /// A fresh attack strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// This attack as a scenario strategy axis.
    pub fn spec() -> StrategySpec {
        StrategySpec::new("ascending-write", |_, _| {
            Box::new(AscendingWriteAttack::new())
        })
    }
}

impl Strategy for AscendingWriteAttack {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Adaptive
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        // Rule 1: finish the write→read pair of the last process.
        if let Some(last) = self.last {
            if view.is_active(last) {
                if let Some(p) = view.pending(last) {
                    if p.kind == Some(OpKind::Read) {
                        return Some(last);
                    }
                }
            }
        }
        // Rule 2: laggards first; writes before reads; ascending register.
        let active = view.active();
        let min_steps = active.iter().map(|&p| view.steps_of(p)).min()?;
        let mut best_write: Option<(u64, ProcessId)> = None;
        let mut best_read: Option<(u64, ProcessId)> = None;
        for &pid in &active {
            if view.steps_of(pid) != min_steps {
                continue;
            }
            let Some(p) = view.pending(pid) else { continue };
            let reg = p.reg.map(|r| r.0).unwrap_or(u64::MAX);
            match p.kind {
                Some(OpKind::Write) => {
                    if best_write.is_none_or(|(b, _)| reg < b) {
                        best_write = Some((reg, pid));
                    }
                }
                _ => {
                    if best_read.is_none_or(|(b, _)| reg < b) {
                        best_read = Some((reg, pid));
                    }
                }
            }
        }
        let chosen = best_write.or(best_read).map(|(_, pid)| pid);
        self.last = chosen;
        chosen
    }
}

/// A **location-oblivious** strategy: it sees read-vs-write and write
/// values (never registers) and greedily schedules pending writes with the
/// largest value first, pairing each write with the writer's next read.
///
/// This is the strongest natural attack available to the paper's
/// location-oblivious adversary against the Figure 1 group election — and
/// Lemma 2.2 predicts it cannot push the elected count past
/// `2·log₂ k + 6`, because the slot choice `x` is hidden. The tests pit it
/// against the geometric group election to confirm the bound's robustness
/// (contrast with [`AscendingWriteAttack`], which *can* see registers and
/// breaks the O(log* k) algorithm).
#[derive(Debug, Clone, Default)]
pub struct ValuePriorityLocationOblivious {
    last: Option<ProcessId>,
}

impl ValuePriorityLocationOblivious {
    /// A fresh strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// This attack as a scenario strategy axis.
    pub fn spec() -> StrategySpec {
        StrategySpec::new("value-priority", |_, _| {
            Box::new(ValuePriorityLocationOblivious::new())
        })
    }
}

impl Strategy for ValuePriorityLocationOblivious {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::LocationOblivious
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        if let Some(last) = self.last {
            if view.is_active(last) {
                if let Some(p) = view.pending(last) {
                    if p.kind == Some(OpKind::Read) {
                        return Some(last);
                    }
                }
            }
        }
        let mut best_write: Option<(u64, ProcessId)> = None;
        let mut any_read: Option<ProcessId> = None;
        for pid in view.active() {
            let Some(p) = view.pending(pid) else { continue };
            match p.kind {
                Some(OpKind::Write) => {
                    let v = p.write_value.unwrap_or(0);
                    if best_write.is_none_or(|(b, _)| v > b) {
                        best_write = Some((v, pid));
                    }
                }
                _ => any_read = any_read.or(Some(pid)),
            }
        }
        let chosen = best_write.map(|(_, p)| p).or(any_read);
        self.last = chosen;
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_elect::{run_group_election, GeometricGroupElect};
    use crate::logstar::LogStarLe;
    use crate::ratrace::SpaceEfficientRatRace;
    use rtas_sim::adversary::RandomSchedule;
    use rtas_sim::executor::Execution;
    use rtas_sim::memory::Memory;
    use rtas_sim::protocol::ret;

    fn logstar_max_steps_under_attack(k: usize, seed: u64) -> u64 {
        let mut mem = Memory::new();
        let le = LogStarLe::new(&mut mem, k);
        let protos = (0..k).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut AscendingWriteAttack::new());
        assert!(res.all_finished());
        assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
        res.steps().max()
    }

    #[test]
    fn attack_preserves_correctness() {
        for k in [2usize, 4, 8] {
            for seed in 0..10 {
                let _ = logstar_max_steps_under_attack(k, seed);
            }
        }
    }

    #[test]
    fn attack_forces_linear_steps_on_logstar() {
        // Mean max-steps under attack should grow ~linearly in k: at least
        // k steps for the last survivor (each level retires one process
        // and costs it a constant number of steps).
        let mean = |k: usize| {
            let trials = 5;
            let total: u64 = (0..trials)
                .map(|s| logstar_max_steps_under_attack(k, s))
                .sum();
            total as f64 / trials as f64
        };
        let m8 = mean(8);
        let m32 = mean(32);
        assert!(
            m32 > m8 * 2.0,
            "attack not forcing linear growth: m8={m8} m32={m32}"
        );
        // The attacked max-steps at k=32 should exceed anything log-like.
        assert!(m32 >= 32.0, "m32={m32}");
    }

    #[test]
    fn attack_leaves_ratrace_logarithmic() {
        let mean = |k: usize| {
            let trials = 5;
            let total: u64 = (0..trials)
                .map(|seed| {
                    let mut mem = Memory::new();
                    let rr = SpaceEfficientRatRace::new(&mut mem, k);
                    let protos = (0..k).map(|_| rr.elect()).collect();
                    let res =
                        Execution::new(mem, protos, seed).run(&mut AscendingWriteAttack::new());
                    assert!(res.all_finished());
                    res.steps().max()
                })
                .sum();
            total as f64 / trials as f64
        };
        let m8 = mean(8);
        let m64 = mean(64);
        // RatRace stays ~logarithmic even under this strategy.
        assert!(m64 < m8 * 4.0, "m8={m8} m64={m64}");
    }

    #[test]
    fn location_oblivious_attack_cannot_break_lemma_2_2() {
        // Lemma 2.2 holds against *any* location-oblivious adversary; the
        // value-priority strategy must stay within the bound.
        for k in [16usize, 64, 256] {
            let mut total = 0usize;
            let trials = 12;
            for seed in 0..trials {
                let mut mem = Memory::new();
                let ge = GeometricGroupElect::new(&mut mem, 1024, "ge");
                let (elected, finished) = run_group_election(
                    mem,
                    &ge,
                    k,
                    seed,
                    &mut ValuePriorityLocationOblivious::new(),
                );
                assert_eq!(finished, k);
                assert!(elected >= 1);
                total += elected;
            }
            let mean = total as f64 / trials as f64;
            let bound = 2.0 * (k as f64).log2() + 6.0;
            assert!(
                mean <= bound,
                "k={k}: location-oblivious attack reached {mean} > {bound}"
            );
        }
    }

    #[test]
    fn location_oblivious_attack_preserves_le_correctness() {
        for seed in 0..10 {
            let k = 12;
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, k);
            let protos = (0..k).map(|_| le.elect()).collect();
            let res =
                Execution::new(mem, protos, seed).run(&mut ValuePriorityLocationOblivious::new());
            assert!(res.all_finished());
            assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
        }
    }

    #[test]
    fn attack_is_much_worse_than_random_for_logstar() {
        let k = 24;
        let attacked = logstar_max_steps_under_attack(k, 1);
        let mut mem = Memory::new();
        let le = LogStarLe::new(&mut mem, k);
        let protos = (0..k).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, 1).run(&mut RandomSchedule::new(1));
        let random = res.steps().max();
        assert!(
            attacked > random,
            "attack ({attacked}) not worse than random ({random})"
        );
    }
}
