//! Adversary independence (Section 4, Theorem 4.1).
//!
//! Given any leader election `A` designed for a weak (location- or
//! R/W-oblivious) adversary, the combiner runs `A` and RatRace **in
//! parallel, round-robin**: each process performs a RatRace step on odd
//! steps and an `A` step on even steps, with the combination rules:
//!
//! 1. winning *either* execution stops the other and sends the process to
//!    a top-level 2-process election `LEtop` (RatRace winner as role 0,
//!    `A` winner as role 1); winning `LEtop` wins the combined object;
//! 2. losing RatRace stops `A` and loses;
//! 3. losing `A` stops RatRace and loses — **unless** the process has
//!    already won a splitter in RatRace, in which case it abandons `A`
//!    and continues RatRace alone (this is what rules out executions
//!    where the two sides eliminate each other and nobody wins).
//!
//! The result (Theorem 4.1): O(log k) steps against the adaptive
//! adversary (RatRace's bound) *and* `A`'s step complexity against `A`'s
//! weak adversary — experiment E5 regenerates this table, pairing the
//! O(log* k) algorithm with the ascending-write attack of
//! [`crate::attacks`].
//!
//! Implementation note: each side runs in its own
//! [`rtas_sim::executor::SubRuntime`] *inside* one process's protocol —
//! the protocol interleaves the two operation streams one shared-memory
//! operation at a time, exactly as the paper's round-robin demands.

use std::sync::Arc;

use rtas_primitives::{RoleLeaderElect, TwoProcessLe};
use rtas_sim::executor::{SubPoll, SubRuntime};
use rtas_sim::memory::Memory;
use rtas_sim::op::OpKind;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::Word;

use crate::ratrace::SpaceEfficientRatRace;
use crate::LeaderElect;

/// The Section 4 combined leader election.
#[derive(Clone)]
pub struct Combined {
    ratrace: SpaceEfficientRatRace,
    weak: Arc<dyn LeaderElect>,
    letop: TwoProcessLe,
}

impl std::fmt::Debug for Combined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Combined")
            .field("ratrace", &self.ratrace)
            .finish()
    }
}

impl Combined {
    /// Combine `weak` (an algorithm for a weak adversary) with a RatRace
    /// sized for `n` processes.
    pub fn new(memory: &mut Memory, weak: Arc<dyn LeaderElect>, n: usize) -> Self {
        let ratrace = SpaceEfficientRatRace::new(memory, n);
        let letop = TwoProcessLe::new(memory, "combined-letop");
        Combined {
            ratrace,
            weak,
            letop,
        }
    }

    /// Build the per-process `elect()` protocol.
    pub fn elect(&self) -> Box<dyn Protocol> {
        Box::new(CombinedProtocol {
            combined: self.clone(),
            rr: Side::new(SubRuntime::new(self.ratrace.elect())),
            weak: Side::new(SubRuntime::new(self.weak.elect())),
            pending: None,
            next_turn: Turn::RatRace,
            state: State::Interleaving,
        })
    }
}

impl LeaderElect for Combined {
    fn elect(&self) -> Box<dyn Protocol> {
        Combined::elect(self)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    RatRace,
    Weak,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Alternating steps between the two sides.
    Interleaving,
    /// Waiting for `LEtop`.
    AfterTop,
}

/// One side of the interleaving: its runtime plus a stopped flag.
struct Side {
    runtime: SubRuntime,
    stopped: bool,
}

impl Side {
    fn new(runtime: SubRuntime) -> Self {
        Side {
            runtime,
            stopped: false,
        }
    }

    /// Whether this side can still take a step.
    fn live(&self) -> bool {
        !self.stopped && self.runtime.finished().is_none()
    }
}

struct CombinedProtocol {
    combined: Combined,
    rr: Side,
    weak: Side,
    pending: Option<Turn>,
    next_turn: Turn,
    state: State,
}

/// What the rule engine decided after a side produced a result.
enum RuleOutcome {
    /// Keep interleaving (or continuing one side).
    Continue,
    /// Enter `LEtop` with this role.
    Top(usize),
    /// The combined election is lost.
    Lose,
}

impl CombinedProtocol {
    /// Apply rules 1–3 for a side that just finished with `value`.
    fn on_side_finished(&mut self, side: Turn, value: Word, won_splitter: bool) -> RuleOutcome {
        match (side, value) {
            (Turn::RatRace, v) if v == ret::WIN => {
                // Rule 1: stop A, go for LEtop as the RatRace winner.
                self.weak.stopped = true;
                RuleOutcome::Top(0)
            }
            (Turn::RatRace, _) => {
                // Rule 2: losing RatRace loses everything.
                self.weak.stopped = true;
                RuleOutcome::Lose
            }
            (Turn::Weak, v) if v == ret::WIN => {
                // Rule 1: stop RatRace, go for LEtop as the A winner.
                self.rr.stopped = true;
                RuleOutcome::Top(1)
            }
            (Turn::Weak, _) => {
                if won_splitter {
                    // Rule 3 (exception): already holds a RatRace
                    // splitter — continue RatRace alone.
                    RuleOutcome::Continue
                } else {
                    // Rule 3: stop RatRace and lose.
                    self.rr.stopped = true;
                    RuleOutcome::Lose
                }
            }
        }
    }

    fn side_mut(&mut self, turn: Turn) -> &mut Side {
        match turn {
            Turn::RatRace => &mut self.rr,
            Turn::Weak => &mut self.weak,
        }
    }
}

impl Protocol for CombinedProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        if self.state == State::AfterTop {
            return Poll::Done(input.child_value());
        }
        // Deliver the result of the op we issued on behalf of a side.
        if let Some(turn) = self.pending.take() {
            match input {
                Resume::Read(_) | Resume::Wrote => {
                    self.side_mut(turn).runtime.feed(input);
                }
                other => panic!("unexpected resume {other:?} while interleaving"),
            }
        } else {
            debug_assert!(matches!(input, Resume::Start));
        }
        loop {
            // Advance any live side that is not poised yet, applying the
            // combination rules as sides finish.
            for turn in [Turn::RatRace, Turn::Weak] {
                let side = self.side_mut(turn);
                if side.stopped || side.runtime.finished().is_some() {
                    continue;
                }
                if side.runtime.pending().is_none() {
                    if let SubPoll::Finished(v) = side.runtime.advance(ctx) {
                        let won_splitter = ctx.notes.won_splitter;
                        match self.on_side_finished(turn, v, won_splitter) {
                            RuleOutcome::Continue => {}
                            RuleOutcome::Lose => return Poll::Done(ret::LOSE),
                            RuleOutcome::Top(role) => {
                                self.state = State::AfterTop;
                                return Poll::Call(self.combined.letop.elect_as(role));
                            }
                        }
                    }
                }
            }
            // Pick the next side to step, alternating when both are live.
            let turn = match (self.rr.live(), self.weak.live()) {
                (true, true) => {
                    let t = self.next_turn;
                    self.next_turn = match t {
                        Turn::RatRace => Turn::Weak,
                        Turn::Weak => Turn::RatRace,
                    };
                    t
                }
                (true, false) => Turn::RatRace,
                (false, true) => Turn::Weak,
                (false, false) => {
                    // Both sides stopped without triggering a rule — only
                    // possible if a side finished while stopped, which the
                    // rules exclude; be safe and lose.
                    debug_assert!(false, "combined: both sides dead without outcome");
                    return Poll::Done(ret::LOSE);
                }
            };
            let side = self.side_mut(turn);
            if let Some(op) = side.runtime.pending() {
                debug_assert!(matches!(op.kind(), OpKind::Read | OpKind::Write));
                self.pending = Some(turn);
                return Poll::Op(op);
            }
            // Side had no pending op (it just finished or advanced);
            // loop to re-apply rules / re-pick.
        }
    }

    fn name(&self) -> &'static str {
        "combined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logstar::LogStarLe;
    use rtas_sim::adversary::{AdversaryClass, FnAdversary, RandomSchedule, RoundRobin, View};
    use rtas_sim::executor::Execution;
    use rtas_sim::word::ProcessId;

    fn combined_system(k: usize, n: usize) -> (Memory, Vec<Box<dyn Protocol>>) {
        let mut mem = Memory::new();
        let weak = Arc::new(LogStarLe::new(&mut mem, n));
        let comb = Combined::new(&mut mem, weak, n);
        let protos = (0..k).map(|_| comb.elect()).collect();
        (mem, protos)
    }

    #[test]
    fn solo_process_wins() {
        let (mem, protos) = combined_system(1, 8);
        let res = Execution::new(mem, protos, 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
    }

    #[test]
    fn unique_winner_random_schedules() {
        for k in [2usize, 4, 10] {
            for seed in 0..40 {
                let (mem, protos) = combined_system(k, k);
                let res =
                    Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 37));
                assert!(res.all_finished(), "k={k} seed={seed}");
                assert_eq!(
                    res.processes_with_outcome(ret::WIN).len(),
                    1,
                    "k={k} seed={seed}: {:?}",
                    res.outcomes()
                );
            }
        }
    }

    #[test]
    fn unique_winner_lockstep() {
        for k in [2usize, 6, 12] {
            for seed in 0..15 {
                let (mem, protos) = combined_system(k, k);
                let res = Execution::new(mem, protos, seed).run(&mut RoundRobin::new(k));
                assert!(res.all_finished());
                assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
            }
        }
    }

    #[test]
    fn unique_winner_adaptive_laggard() {
        for seed in 0..20 {
            let (mem, protos) = combined_system(6, 6);
            let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
                view.active().into_iter().min_by_key(|&p| view.steps_of(p))
            });
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            assert!(res.all_finished());
            assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
        }
    }

    #[test]
    fn combined_with_ratrace_as_weak_side() {
        // The paper's pathological example: A = RatRace. The combination
        // rules must still produce exactly one winner.
        for seed in 0..20 {
            let k = 5;
            let mut mem = Memory::new();
            let weak = Arc::new(SpaceEfficientRatRace::new(&mut mem, k));
            let comb = Combined::new(&mut mem, weak, k);
            let protos = (0..k).map(|_| comb.elect()).collect();
            let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed));
            assert!(res.all_finished());
            assert_eq!(
                res.processes_with_outcome(ret::WIN).len(),
                1,
                "seed {seed}: {:?}",
                res.outcomes()
            );
        }
    }

    #[test]
    fn space_overhead_is_linear() {
        let mut mem = Memory::new();
        let weak = Arc::new(LogStarLe::new(&mut mem, 256));
        let weak_regs = mem.declared_registers();
        let _comb = Combined::new(&mut mem, weak, 256);
        let total = mem.declared_registers();
        assert!(
            total - weak_regs <= 40 * 256 + 200,
            "combiner overhead {} not Θ(n)",
            total - weak_regs
        );
    }
}
