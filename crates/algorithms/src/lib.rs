//! # rtas-algorithms — the paper's leader-election algorithms
//!
//! Every algorithm of Giakkoupis & Woelfel (PODC 2012), built on
//! [`rtas_sim`] and [`rtas_primitives`]:
//!
//! * [`group_elect`] — the Group Election primitive of Section 2.1, its
//!   geometric implementation for the location-oblivious adversary
//!   (Figure 1, Lemma 2.2) and the Alistarh–Aspnes *sifting*
//!   implementation for the R/W-oblivious adversary (Section 2.3).
//! * [`le_chain`] — leader election from a ladder of group elections,
//!   splitters and 2-process elections (Section 2.1, Lemma 2.1).
//! * [`logstar`] — the O(log* k) adaptive leader election from O(n)
//!   registers (Theorem 2.3).
//! * [`loglog`] — the O(log log k) adaptive leader election for the
//!   R/W-oblivious adversary (Theorem 2.4).
//! * [`elimination_path`] — the elimination-path structure of Section 3.2
//!   (Claim 3.1).
//! * [`ratrace`] — the original RatRace of Alistarh et al. (Θ(n³)
//!   registers) and the paper's space-efficient variant (Θ(n) registers),
//!   both with O(log k) step complexity (Section 3).
//! * [`combined`] — the adversary-independence combiner of Section 4
//!   (Theorem 4.1): run any weak-adversary algorithm alongside RatRace and
//!   inherit the best step complexity of both.
//! * [`attacks`] — concrete adaptive-adversary strategies, including the
//!   ascending-write attack that forces Ω(k) steps on the log* algorithm
//!   (the observation motivating Section 4).
//!
//! ```
//! use rtas_algorithms::LogStarLe;
//! use rtas_sim::prelude::*;
//! use rtas_sim::protocol::ret;
//!
//! let k = 8;
//! let mut mem = Memory::new();
//! let le = LogStarLe::new(&mut mem, k);
//! let protos = (0..k).map(|_| le.elect()).collect();
//! let res = Execution::new(mem, protos, 1).run(&mut RandomSchedule::new(2));
//! assert!(res.all_finished());
//! assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
//! ```

pub mod attacks;
pub mod combined;
pub mod elimination_path;
pub mod group_elect;
pub mod le_chain;
pub mod loglog;
pub mod logstar;
pub mod ratrace;

pub use rtas_primitives::LeaderElect;

pub use combined::Combined;
pub use elimination_path::EliminationPath;
pub use group_elect::{DummyGroupElect, GeometricGroupElect, GroupElect, SiftingGroupElect};
pub use le_chain::{ChainOutcome, LeChain, OverflowPolicy};
pub use loglog::{AaLe, LogLogLe};
pub use logstar::LogStarLe;
pub use ratrace::{OriginalRatRace, SpaceEfficientRatRace};
