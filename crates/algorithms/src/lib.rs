//! # rtas-algorithms — the paper's leader-election algorithms
//!
//! Every algorithm of Giakkoupis & Woelfel (PODC 2012), built on
//! [`rtas_sim`] and [`rtas_primitives`]:
//!
//! * [`group_elect`] — the Group Election primitive of Section 2.1, its
//!   geometric implementation for the location-oblivious adversary
//!   (Figure 1, Lemma 2.2) and the Alistarh–Aspnes *sifting*
//!   implementation for the R/W-oblivious adversary (Section 2.3).
//! * [`le_chain`] — leader election from a ladder of group elections,
//!   splitters and 2-process elections (Section 2.1, Lemma 2.1).
//! * [`logstar`] — the O(log* k) adaptive leader election from O(n)
//!   registers (Theorem 2.3).
//! * [`loglog`] — the O(log log k) adaptive leader election for the
//!   R/W-oblivious adversary (Theorem 2.4).
//! * [`elimination_path`] — the elimination-path structure of Section 3.2
//!   (Claim 3.1).
//! * [`ratrace`] — the original RatRace of Alistarh et al. (Θ(n³)
//!   registers) and the paper's space-efficient variant (Θ(n) registers),
//!   both with O(log k) step complexity (Section 3).
//! * [`combined`] — the adversary-independence combiner of Section 4
//!   (Theorem 4.1): run any weak-adversary algorithm alongside RatRace and
//!   inherit the best step complexity of both.
//! * [`attacks`] — concrete adaptive-adversary strategies, including the
//!   ascending-write attack that forces Ω(k) steps on the log* algorithm
//!   (the observation motivating Section 4).
//!
//! ```
//! use rtas_algorithms::LogStarLe;
//! use rtas_sim::prelude::*;
//! use rtas_sim::protocol::ret;
//!
//! let k = 8;
//! let mut mem = Memory::new();
//! let le = LogStarLe::new(&mut mem, k);
//! let protos = (0..k).map(|_| le.elect()).collect();
//! let res = Execution::new(mem, protos, 1).run(&mut RandomSchedule::new(2));
//! assert!(res.all_finished());
//! assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
//! ```
//!
//! ## The arena-reset contract
//!
//! Every constructor here is **arena-resettable**: it allocates the
//! object's register regions and descriptor tree exactly once, and the
//! per-call protocols returned by `elect()` assume *only* that every
//! register holds its initial value 0 when the resolution starts. No
//! descriptor mutates after construction, and no protocol depends on
//! which resolution (first or thousandth) it belongs to. Consequently
//! zeroing the registers — [`Memory::reset_values`] in the simulator,
//! `rtas::native::NativeMemory::reset` on real atomics — returns the
//! object to its pristine one-shot state, and a fixed pool of objects
//! can be recycled by epoch (the `rtas-load` sharded arena, the E12
//! experiment) instead of rebuilt per resolution. The
//! `reuse_contract` tests pin this down for every algorithm in the
//! crate: one structure, 100 reset epochs, exactly one winner each.
//!
//! [`Memory::reset_values`]: rtas_sim::memory::Memory::reset_values

pub mod attacks;
pub mod combined;
pub mod elimination_path;
pub mod group_elect;
pub mod le_chain;
pub mod loglog;
pub mod logstar;
pub mod ratrace;

pub use rtas_primitives::LeaderElect;

pub use combined::Combined;
pub use elimination_path::EliminationPath;
pub use group_elect::{DummyGroupElect, GeometricGroupElect, GroupElect, SiftingGroupElect};
pub use le_chain::{ChainOutcome, LeChain, OverflowPolicy};
pub use loglog::{AaLe, LogLogLe};
pub use logstar::LogStarLe;
pub use ratrace::{OriginalRatRace, SpaceEfficientRatRace};

#[cfg(test)]
mod reuse_contract {
    //! The arena-reset contract (see the crate docs): every algorithm,
    //! built once, must resolve correctly across 100 register-reset
    //! epochs — the simulator twin of the native arena's recycle path.

    use std::sync::Arc;

    use rtas_sim::executor::Execution;
    use rtas_sim::memory::Memory;
    use rtas_sim::prelude::RandomSchedule;
    use rtas_sim::protocol::{ret, Protocol};
    use rtas_sim::rng::SplitMix64;

    use super::*;

    fn reuse_100_epochs(name: &str, build: impl Fn(&mut Memory, usize) -> Arc<dyn LeaderElect>) {
        let k = 6;
        let mut mem = Memory::new();
        let le = build(&mut mem, k);
        let mut exec = Execution::new(mem, Vec::new(), 0);
        let mut seeds = SplitMix64::new(0xa9e2a);
        for epoch in 0..100 {
            let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
            // reset() zeroes the same warm registers — no reallocation.
            exec.reset(protos, seeds.next_u64());
            let mut adv = RandomSchedule::new(seeds.next_u64());
            let out = exec.run_in_place(&mut adv);
            assert!(out.all_finished(), "{name} epoch {epoch}: did not finish");
            assert_eq!(
                exec.count_outcome(ret::WIN),
                1,
                "{name} epoch {epoch}: winner count wrong"
            );
        }
    }

    #[test]
    fn logstar_is_arena_resettable() {
        reuse_100_epochs("logstar", |m, n| Arc::new(LogStarLe::new(m, n)));
    }

    #[test]
    fn loglog_is_arena_resettable() {
        reuse_100_epochs("loglog", |m, n| Arc::new(LogLogLe::new(m, n)));
    }

    #[test]
    fn ratrace_space_efficient_is_arena_resettable() {
        reuse_100_epochs("ratrace-se", |m, n| {
            Arc::new(SpaceEfficientRatRace::new(m, n))
        });
    }

    #[test]
    fn ratrace_original_is_arena_resettable() {
        reuse_100_epochs("ratrace", |m, n| Arc::new(OriginalRatRace::new(m, n)));
    }

    #[test]
    fn combined_is_arena_resettable() {
        reuse_100_epochs("combined", |m, n| {
            let weak = Arc::new(LogStarLe::new(m, n));
            Arc::new(Combined::new(m, weak, n))
        });
    }
}
