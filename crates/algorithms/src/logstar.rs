//! Theorem 2.3: adaptive leader election with O(log* k) expected steps
//! against the location-oblivious adversary, from O(n) registers.
//!
//! The construction instantiates the Section 2.1 ladder with geometric
//! group elections (Figure 1). A ladder of `n` levels each carrying an
//! Θ(log n)-register group election would cost Θ(n log n) registers; the
//! paper observes that with probability `1 − 1/n` only the first O(log n)
//! group elections are ever used, so the rest are replaced by *dummy*
//! group elections (everyone elected, zero registers). The splitter at
//! each level still retires at least one process per level, so `n` levels
//! with dummies remain correct for any contention `k ≤ n`.
//!
//! Space: O(log n) geometric group elections × O(log n) registers each
//! + `n` levels × 4 ladder registers = O(n) total (for n ≥ log² n).
//!
//! Experiment E2 regenerates the step-complexity curve; experiment E9
//! shows the adaptive adversary forcing Ω(k) on this same algorithm — the
//! observation motivating Section 4's combiner.

use std::sync::Arc;

use rtas_sim::memory::Memory;
use rtas_sim::protocol::Protocol;

use crate::group_elect::{DummyGroupElect, GeometricGroupElect, GroupElect};
use crate::le_chain::{LeChain, OverflowPolicy};
use crate::LeaderElect;

/// The Theorem 2.3 leader election.
#[derive(Debug, Clone)]
pub struct LogStarLe {
    chain: LeChain,
    n: usize,
    real_levels: usize,
}

impl LogStarLe {
    /// Build the structure for up to `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(memory: &mut Memory, n: usize) -> Self {
        // Enough real (geometric) levels that the survivor count is O(1)
        // with probability 1 − 1/n: f(k) = 2 log k + 6 halves the "log"
        // each level; 3·⌈log₂ n⌉ + 8 levels give a comfortable margin.
        let n_eff = n.max(2);
        let real_levels = (3 * crate::group_elect::ceil_log2(n_eff) as usize + 8).min(n_eff);
        Self::with_real_levels(memory, n, real_levels)
    }

    /// Build with an explicit number of non-dummy levels (ablation knob:
    /// the dummy-tail replacement of Theorem 2.3). `real_levels = 0`
    /// degrades the ladder to pure splitters (an elimination path);
    /// `real_levels = n` recovers the naive O(n log n)-register variant.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `real_levels > max(n, 2)`.
    pub fn with_real_levels(memory: &mut Memory, n: usize, real_levels: usize) -> Self {
        assert!(n >= 1, "need at least one process");
        let n_eff = n.max(2);
        assert!(real_levels <= n_eff, "more real levels than ladder levels");
        let mut ges: Vec<Arc<dyn GroupElect>> = Vec::with_capacity(n_eff);
        for _ in 0..real_levels {
            ges.push(Arc::new(GeometricGroupElect::new(
                memory,
                n_eff,
                "logstar-ge",
            )));
        }
        for _ in real_levels..n_eff {
            ges.push(Arc::new(DummyGroupElect::new()));
        }
        let chain = LeChain::new(memory, ges, OverflowPolicy::Lose, "logstar-ladder");
        LogStarLe {
            chain,
            n,
            real_levels,
        }
    }

    /// Maximum number of participating processes.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Number of non-dummy (geometric) group-election levels.
    pub fn real_levels(&self) -> usize {
        self.real_levels
    }

    /// Total ladder levels (equals `max(n, 2)`).
    pub fn levels(&self) -> usize {
        self.chain.levels()
    }

    /// Build the per-process `elect()` protocol.
    pub fn elect(&self) -> Box<dyn Protocol> {
        self.chain.elect()
    }
}

impl LeaderElect for LogStarLe {
    fn elect(&self) -> Box<dyn Protocol> {
        LogStarLe::elect(self)
    }
}

/// The iterated logarithm `log₂* x`: how many times `log₂` must be applied
/// before the value drops to ≤ 1.
pub fn log_star(x: f64) -> u32 {
    let mut v = x;
    let mut i = 0;
    while v > 1.0 {
        v = v.log2();
        i += 1;
        if i > 64 {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::protocol::ret;
    use rtas_sim::word::ProcessId;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(1e30), 5);
    }

    #[test]
    fn solo_process_wins() {
        let mut mem = Memory::new();
        let le = LogStarLe::new(&mut mem, 8);
        let res = Execution::new(mem, vec![le.elect()], 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
    }

    #[test]
    fn unique_winner_random_schedules() {
        for k in [2usize, 4, 10, 32] {
            for seed in 0..30 {
                let mut mem = Memory::new();
                let le = LogStarLe::new(&mut mem, k);
                let protos = (0..k).map(|_| le.elect()).collect();
                let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 3));
                assert!(res.all_finished(), "k={k} seed={seed}");
                assert_eq!(
                    res.processes_with_outcome(ret::WIN).len(),
                    1,
                    "k={k} seed={seed}: {:?}",
                    res.outcomes()
                );
            }
        }
    }

    #[test]
    fn space_is_linear_in_n() {
        // O(n): ladder 4n + O(log² n) for the geometric group elections.
        for n in [64usize, 256, 1024] {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, n);
            let declared = mem.declared_registers();
            let bound = 4 * n as u64 + (le.real_levels() as u64 + 2) * 20;
            assert!(
                declared <= bound,
                "n={n}: {declared} registers exceeds bound {bound}"
            );
            assert!(le.real_levels() < n);
        }
    }

    #[test]
    fn contention_below_capacity_works() {
        let mut mem = Memory::new();
        let le = LogStarLe::new(&mut mem, 64);
        let protos = (0..5).map(|_| le.elect()).collect();
        let res = Execution::new(mem, protos, 9).run(&mut RandomSchedule::new(77));
        assert!(res.all_finished());
        assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
    }

    #[test]
    fn mean_steps_grow_very_slowly() {
        // The defining property: mean max-steps at k = 64 should be only a
        // little above k = 4 (log* growth), and far below linear.
        let mean_for = |k: usize| {
            let trials = 20u64;
            let mut total = 0u64;
            for seed in 0..trials {
                let mut mem = Memory::new();
                let le = LogStarLe::new(&mut mem, k);
                let protos = (0..k).map(|_| le.elect()).collect();
                let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed + 5));
                assert!(res.all_finished());
                total += res.steps().max();
            }
            total as f64 / trials as f64
        };
        let m4 = mean_for(4);
        let m64 = mean_for(64);
        assert!(m64 < m4 * 4.0 + 30.0, "m4={m4} m64={m64}");
        assert!(m64 < 64.0, "not sub-linear: {m64}");
    }
}
