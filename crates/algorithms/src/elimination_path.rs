//! Elimination paths (Section 3.2, Claim 3.1).
//!
//! An elimination path of length `ℓ` is a row of `ℓ` nodes, each holding a
//! deterministic splitter `SP_i` and a 2-process election `LE_i`. A process
//! enters at node 1 and moves right until it wins a splitter (`S`), loses
//! (`L`), or falls off the right end; a splitter winner then moves *left*,
//! winning `LE_i, LE_{i−1}, …` until it loses or wins `LE_1` — the path's
//! winner.
//!
//! Claim 3.1: if at most `ℓ` processes enter a path of length `ℓ`, no
//! process falls off the right end (each node's splitter retires at least
//! one process). The paper replaces RatRace's Θ(n²) backup grid with one
//! length-`n` elimination path, and the tall primary tree with a short
//! tree plus `n / log n` length-`4·log n` paths — the Θ(n)-register
//! redesign measured in experiment E4.
//!
//! Note the structural identity: an elimination path is exactly the
//! Section 2.1 ladder with *dummy* group elections. It is implemented
//! directly here (rather than via [`crate::le_chain`]) because its users
//! need the distinct outcome `FELL_OFF` and entry of the winner into a
//! parent structure.

use std::sync::Arc;

use rtas_primitives::{RoleLeaderElect, Splitter, SplitterObject, TwoProcessLe};
use rtas_sim::memory::Memory;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::Word;

/// Outcome values of an elimination-path `enter()`.
pub mod path_ret {
    use rtas_sim::word::Word;

    /// Lost inside the path.
    pub const LOSE: Word = rtas_sim::protocol::ret::LOSE;
    /// Won the path (won `LE_1`).
    pub const WIN: Word = rtas_sim::protocol::ret::WIN;
    /// Fell off the right end (more than `ℓ` processes entered).
    pub const FELL_OFF: Word = 2;
}

struct Node {
    sp: Splitter,
    le: TwoProcessLe,
}

/// An elimination path of fixed length.
#[derive(Clone)]
pub struct EliminationPath {
    nodes: Arc<Vec<Node>>,
}

impl std::fmt::Debug for EliminationPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EliminationPath")
            .field("length", &self.nodes.len())
            .finish()
    }
}

impl EliminationPath {
    /// Allocate a path of `length` nodes under the given label.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0`.
    pub fn new(memory: &mut Memory, length: usize, label: &str) -> Self {
        assert!(length >= 1, "elimination path needs at least one node");
        let nodes = (0..length)
            .map(|_| Node {
                sp: Splitter::new(memory, label),
                le: TwoProcessLe::new(memory, label),
            })
            .collect();
        EliminationPath {
            nodes: Arc::new(nodes),
        }
    }

    /// Path length `ℓ`.
    pub fn length(&self) -> usize {
        self.nodes.len()
    }

    /// Registers used: 4 per node.
    pub fn registers(&self) -> u64 {
        self.nodes.len() as u64 * (Splitter::REGISTERS + TwoProcessLe::REGISTERS)
    }

    /// Build the protocol for one process entering at node 1.
    ///
    /// Returns [`path_ret::WIN`], [`path_ret::LOSE`], or
    /// [`path_ret::FELL_OFF`].
    pub fn enter(&self) -> Box<dyn Protocol> {
        Box::new(PathProtocol {
            path: self.clone(),
            state: State::Split,
            node: 0,
            role: 0,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// About to try `SP_node`.
    Split,
    /// Waiting for `SP_node.split()`.
    AfterSplit,
    /// About to try `LE_node` as `role`.
    Climb,
    /// Waiting for `LE_node.elect_as(role)`.
    AfterClimb,
}

struct PathProtocol {
    path: EliminationPath,
    state: State,
    node: usize,
    role: usize,
}

impl Protocol for PathProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        loop {
            match self.state {
                State::Split => {
                    self.state = State::AfterSplit;
                    return Poll::Call(self.path.nodes[self.node].sp.split());
                }
                State::AfterSplit => match input.child_value() {
                    v if v == ret::SPLIT_LEFT => return Poll::Done(path_ret::LOSE),
                    v if v == ret::SPLIT_RIGHT => {
                        self.node += 1;
                        if self.node == self.path.nodes.len() {
                            return Poll::Done(path_ret::FELL_OFF);
                        }
                        self.state = State::Split;
                    }
                    v if v == ret::SPLIT_STOP => {
                        // Won SP_node: climb left through the elections.
                        // The note feeds Section 4's combiner (Rule 3).
                        ctx.notes.won_splitter = true;
                        self.role = 0;
                        self.state = State::Climb;
                    }
                    other => panic!("invalid splitter result {other}"),
                },
                State::Climb => {
                    self.state = State::AfterClimb;
                    return Poll::Call(self.path.nodes[self.node].le.elect_as(self.role));
                }
                State::AfterClimb => {
                    if input.child_value() == ret::LOSE {
                        return Poll::Done(path_ret::LOSE);
                    }
                    if self.node == 0 {
                        return Poll::Done(path_ret::WIN);
                    }
                    self.node -= 1;
                    self.role = 1;
                    self.state = State::Climb;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "elimination-path"
    }
}

/// A `Word` result classifier shared by tests and RatRace.
pub fn is_win(w: Word) -> bool {
    w == path_ret::WIN
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::word::ProcessId;

    fn run_path(length: usize, k: usize, seed: u64) -> Vec<Word> {
        let mut mem = Memory::new();
        let path = EliminationPath::new(&mut mem, length, "ep");
        let protos = (0..k).map(|_| path.enter()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed ^ 0xE9));
        assert!(res.all_finished());
        (0..k).map(|i| res.outcome(ProcessId(i)).unwrap()).collect()
    }

    #[test]
    fn solo_process_wins_first_node() {
        let outs = run_path(3, 1, 0);
        assert_eq!(outs, vec![path_ret::WIN]);
    }

    #[test]
    fn claim_3_1_no_fall_off_when_k_at_most_length() {
        for length in [2usize, 4, 8] {
            for k in 1..=length {
                for seed in 0..25 {
                    let outs = run_path(length, k, seed);
                    assert!(
                        outs.iter().all(|&o| o != path_ret::FELL_OFF),
                        "ℓ={length} k={k} seed={seed}: {outs:?}"
                    );
                    let wins = outs.iter().filter(|&&o| is_win(o)).count();
                    assert_eq!(wins, 1, "ℓ={length} k={k} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn overloaded_path_may_fall_off_but_never_two_winners() {
        let mut fell = false;
        for seed in 0..60 {
            let outs = run_path(2, 5, seed);
            let wins = outs.iter().filter(|&&o| is_win(o)).count();
            assert!(wins <= 1);
            fell |= outs.contains(&path_ret::FELL_OFF);
        }
        // With 5 processes on a length-2 path, fall-off should occur at
        // least sometimes.
        assert!(fell);
    }

    #[test]
    fn lockstep_schedule_unique_winner() {
        for k in [2usize, 3, 4] {
            let mut mem = Memory::new();
            let path = EliminationPath::new(&mut mem, k, "ep");
            let protos = (0..k).map(|_| path.enter()).collect();
            let res = Execution::new(mem, protos, 1).run(&mut RoundRobin::new(k));
            assert!(res.all_finished());
            assert_eq!(res.processes_with_outcome(path_ret::WIN).len(), 1);
        }
    }

    #[test]
    fn register_accounting() {
        let mut mem = Memory::new();
        let path = EliminationPath::new(&mut mem, 7, "ep");
        assert_eq!(path.registers(), 28);
        assert_eq!(mem.declared_registers(), 28);
        assert_eq!(path.length(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_length_panics() {
        let mut mem = Memory::new();
        let _ = EliminationPath::new(&mut mem, 0, "ep");
    }

    #[test]
    fn exhaustive_two_processes_on_short_path() {
        // All schedules × coins for 2 processes on a length-2 path:
        // exactly one winner on complete paths, never a fall-off
        // (Claim 3.1 with k = ℓ = 2), never two winners anywhere.
        use rtas_sim::explore::{explore, ExploreConfig};
        let max_steps = if cfg!(debug_assertions) { 14 } else { 16 };
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let path = EliminationPath::new(&mut mem, 2, "ep");
                (mem, (0..2).map(|_| path.enter()).collect())
            },
            ExploreConfig {
                max_steps,
                max_paths: 40_000_000,
            },
            |e| {
                let wins = e.with_outcome(path_ret::WIN).len();
                assert!(wins <= 1, "{:?}", e.outcomes);
                assert!(
                    e.with_outcome(path_ret::FELL_OFF).is_empty(),
                    "fall-off with k <= ℓ: {:?}",
                    e.outcomes
                );
                if e.all_finished() {
                    assert_eq!(wins, 1, "{:?}", e.outcomes);
                }
            },
        );
        assert!(stats.paths > 500);
    }

    #[test]
    fn splitter_win_sets_combiner_note() {
        // The elimination path must raise Notes::won_splitter for Rule 3
        // of the Section 4 combiner.
        use rtas_sim::executor::{SubPoll, SubRuntime};
        use rtas_sim::op::MemOp;
        use rtas_sim::protocol::{Ctx, Notes, Resume};
        use rtas_sim::rng::SplitMix64;
        let mut mem = Memory::new();
        let path = EliminationPath::new(&mut mem, 2, "ep");
        let mut rt = SubRuntime::new(path.enter());
        let mut rng = SplitMix64::new(0);
        let mut notes = Notes::default();
        loop {
            let poll = {
                let mut ctx = Ctx {
                    pid: rtas_sim::word::ProcessId(0),
                    rng: &mut rng,
                    notes: &mut notes,
                };
                rt.advance(&mut ctx)
            };
            match poll {
                SubPoll::Finished(v) => {
                    assert_eq!(v, path_ret::WIN);
                    break;
                }
                SubPoll::NeedsOp(op) => {
                    let input = match op {
                        MemOp::Read(r) => Resume::Read(mem.read(r).value),
                        MemOp::Write(r, v) => {
                            mem.write(r, v, rtas_sim::word::ProcessId(0));
                            Resume::Wrote
                        }
                    };
                    rt.feed(input);
                }
            }
        }
        assert!(notes.won_splitter, "solo winner must have won a splitter");
    }
}
