//! Fixed schedules for the oblivious adversary.
//!
//! An *oblivious* adversary commits to the entire schedule before the
//! execution starts: a schedule is simply a sequence of process ids. This
//! module provides the schedule type plus the generators the experiments
//! use (round-robin, uniformly random interleavings, block schedules, and
//! solo runs).
//!
//! # Panics
//!
//! All generators share one contract: they panic if called with `n == 0`
//! processes (a schedule over zero processes has no valid slot). Zero
//! *lengths* are fine everywhere and produce an empty schedule.

use crate::rng::SplitMix64;
use crate::word::ProcessId;

/// The shared `n > 0` contract of every generator (see module docs).
#[track_caller]
fn assert_processes(n: usize) {
    assert!(
        n > 0,
        "schedule generators need at least one process (n > 0)"
    );
}

/// The shared id mapping of every generator: `usize` ids to
/// [`ProcessId`] slots.
fn to_pids<I: IntoIterator<Item = usize>>(ids: I) -> Vec<ProcessId> {
    ids.into_iter().map(ProcessId).collect()
}

/// A fixed sequence of process ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    steps: Vec<ProcessId>,
}

impl Schedule {
    /// Schedule from an explicit sequence.
    pub fn from_pids<I: IntoIterator<Item = usize>>(pids: I) -> Self {
        Schedule {
            steps: to_pids(pids),
        }
    }

    /// Round-robin over `n` processes, `rounds` full rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (the shared generator contract, see the
    /// [module docs](self)).
    pub fn round_robin(n: usize, rounds: usize) -> Self {
        assert_processes(n);
        Schedule {
            steps: to_pids((0..rounds).flat_map(|_| 0..n)),
        }
    }

    /// Uniformly random interleaving: `len` slots, each an independent
    /// uniformly random process in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (the shared generator contract, see the
    /// [module docs](self)).
    pub fn uniform_random(n: usize, len: usize, rng: &mut SplitMix64) -> Self {
        assert_processes(n);
        Schedule {
            steps: to_pids((0..len).map(|_| rng.next_below(n as u64) as usize)),
        }
    }

    /// Processes run one after another, each getting `steps_each`
    /// consecutive slots, in a uniformly random process order.
    ///
    /// This is the "sequential arrivals" workload: low interference, the
    /// best case for splitters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (the shared generator contract, see the
    /// [module docs](self)).
    pub fn sequential(n: usize, steps_each: usize, rng: &mut SplitMix64) -> Self {
        assert_processes(n);
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        Schedule {
            steps: to_pids(
                order
                    .into_iter()
                    .flat_map(|p| std::iter::repeat_n(p, steps_each)),
            ),
        }
    }

    /// All schedules of length `2t` over two processes in which each process
    /// appears exactly `t` times — the schedule set `S_t` of Theorem 6.1.
    ///
    /// The number of such schedules is `C(2t, t) ≤ 4^t`; keep `t` small.
    pub fn all_balanced_two_process(t: usize) -> Vec<Schedule> {
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(2 * t);
        fn rec(current: &mut Vec<ProcessId>, a: usize, b: usize, out: &mut Vec<Schedule>) {
            if a == 0 && b == 0 {
                out.push(Schedule {
                    steps: current.clone(),
                });
                return;
            }
            if a > 0 {
                current.push(ProcessId(0));
                rec(current, a - 1, b, out);
                current.pop();
            }
            if b > 0 {
                current.push(ProcessId(1));
                rec(current, a, b - 1, out);
                current.pop();
            }
        }
        rec(&mut current, t, t, &mut out);
        out
    }

    /// The scheduled process ids.
    pub fn steps(&self) -> &[ProcessId] {
        &self.steps
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the schedule has no slots.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Append another schedule.
    pub fn extend(&mut self, other: &Schedule) {
        self.steps.extend_from_slice(&other.steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_shape() {
        let s = Schedule::round_robin(3, 2);
        let ids: Vec<usize> = s.steps().iter().map(|p| p.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn from_pids_roundtrip() {
        let s = Schedule::from_pids([2, 0, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.steps()[0], ProcessId(2));
        assert!(!s.is_empty());
        assert!(Schedule::default().is_empty());
    }

    #[test]
    fn uniform_random_in_range() {
        let mut rng = SplitMix64::new(1);
        let s = Schedule::uniform_random(4, 100, &mut rng);
        assert_eq!(s.len(), 100);
        assert!(s.steps().iter().all(|p| p.index() < 4));
    }

    #[test]
    fn uniform_random_covers_processes() {
        let mut rng = SplitMix64::new(2);
        let s = Schedule::uniform_random(4, 400, &mut rng);
        for p in 0..4 {
            assert!(s.steps().iter().any(|q| q.index() == p), "P{p} missing");
        }
    }

    #[test]
    fn sequential_blocks() {
        let mut rng = SplitMix64::new(3);
        let s = Schedule::sequential(3, 4, &mut rng);
        assert_eq!(s.len(), 12);
        // Each process appears exactly 4 times, in one contiguous block.
        for p in 0..3 {
            let positions: Vec<usize> = s
                .steps()
                .iter()
                .enumerate()
                .filter(|(_, q)| q.index() == p)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(positions.len(), 4);
            assert_eq!(positions[3] - positions[0], 3, "block not contiguous");
        }
    }

    #[test]
    fn balanced_two_process_count() {
        // C(2t, t) for t = 3 is 20.
        let all = Schedule::all_balanced_two_process(3);
        assert_eq!(all.len(), 20);
        for s in &all {
            assert_eq!(s.len(), 6);
            let zeros = s.steps().iter().filter(|p| p.index() == 0).count();
            assert_eq!(zeros, 3);
        }
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for s in &all {
            let key: Vec<usize> = s.steps().iter().map(|p| p.index()).collect();
            assert!(seen.insert(key));
        }
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Schedule::from_pids([0]);
        a.extend(&Schedule::from_pids([1, 1]));
        assert_eq!(a.len(), 3);
        assert_eq!(a.steps()[2], ProcessId(1));
    }
}
