//! Fundamental identifier and value types of the simulated machine.

use std::fmt;

/// The value stored in a simulated atomic register.
///
/// All algorithms in the paper store small integers (ids, rounds, flags), so
/// one machine word suffices. The initial value of every register is `0`,
/// matching the paper's convention that registers start empty/zero.
pub type Word = u64;

/// Identifier of a process (0-based).
///
/// Processes are the unit of scheduling: the adversary picks which
/// `ProcessId` takes the next shared-memory step.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Index into per-process arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of an atomic register.
///
/// Registers live in [`crate::memory::Memory`]; ids are globally unique
/// within one memory. Ids at or above [`RegId::LAZY_BASE`] belong to lazily
/// materialized regions (used for the huge structures of the original
/// RatRace, which declares Θ(n³) registers but touches few).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u64);

impl RegId {
    /// Ids at or above this bound are backed by a hash map instead of a
    /// dense vector.
    pub const LAZY_BASE: u64 = 1 << 48;

    /// Whether this register belongs to a lazily materialized region.
    #[inline]
    pub fn is_lazy(self) -> bool {
        self.0 >= Self::LAZY_BASE
    }

    /// Register at `offset` slots after `self`.
    ///
    /// # Panics
    ///
    /// Debug-panics on overflow; callers allocate ranges via
    /// [`crate::memory::Memory::alloc`] so offsets are in range by
    /// construction.
    #[inline]
    pub fn offset(self, offset: u64) -> RegId {
        debug_assert!(self.0.checked_add(offset).is_some());
        RegId(self.0 + offset)
    }
}

impl fmt::Debug for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_lazy() {
            write!(f, "r~{}", self.0 - Self::LAZY_BASE)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId(3).to_string(), "P3");
        assert_eq!(format!("{:?}", ProcessId(3)), "P3");
        assert_eq!(ProcessId(7).index(), 7);
    }

    #[test]
    fn reg_id_lazy_detection() {
        assert!(!RegId(0).is_lazy());
        assert!(!RegId(RegId::LAZY_BASE - 1).is_lazy());
        assert!(RegId(RegId::LAZY_BASE).is_lazy());
    }

    #[test]
    fn reg_id_offset() {
        assert_eq!(RegId(10).offset(5), RegId(15));
        assert_eq!(RegId(0).offset(0), RegId(0));
    }

    #[test]
    fn reg_id_debug_formats() {
        assert_eq!(format!("{:?}", RegId(4)), "r4");
        assert_eq!(format!("{:?}", RegId(RegId::LAZY_BASE + 2)), "r~2");
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(RegId(1) < RegId(2));
        assert!(ProcessId(0) < ProcessId(1));
    }
}
