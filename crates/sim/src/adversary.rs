//! The adversary hierarchy of the paper, with capability enforcement.
//!
//! The paper distinguishes four scheduler strengths (Preliminaries):
//!
//! * **adaptive** — sees the entire past execution including coin flips,
//!   and every process's committed next operation;
//! * **location-oblivious** — sees past events and the *type and argument*
//!   of pending operations, but not the register they will access;
//! * **R/W-oblivious** — sees past events and the *register* of pending
//!   operations, but not whether the operation is a read or a write;
//! * **oblivious** — fixes the whole schedule before the execution.
//!
//! The executor constructs a [`View`] whose [`View::pending`] method
//! filters each poised operation according to [`AdversaryClass`], so an
//! adversary implementation *cannot* observe more than its class permits.
//!
//! Concrete scheduling policies implement the narrower [`Strategy`] trait
//! (pure "pick the next process" logic); every strategy is automatically a
//! full [`Adversary`] through a blanket impl. The workload layer
//! ([`crate::scenario`]) composes a strategy with arrival and fault plans
//! into an adversary that also emits lifecycle [`Injection`]s.

use crate::executor::ProcessState;
use crate::metrics::StepCounts;
use crate::op::{MemOp, OpKind};
use crate::protocol::Protocol;
use crate::rng::SplitMix64;
use crate::schedule::Schedule;
use crate::word::{ProcessId, RegId, Word};

/// The strength class of an adversary, in increasing order of power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AdversaryClass {
    /// Schedule fixed in advance; pending views are fully hidden.
    Oblivious,
    /// Sees registers of pending ops but not read-vs-write.
    RwOblivious,
    /// Sees read-vs-write and write values but not registers.
    LocationOblivious,
    /// Sees everything.
    Adaptive,
}

/// A class-filtered description of a process's poised operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PendingView {
    /// Read or write — `None` if the class hides it.
    pub kind: Option<OpKind>,
    /// Target register — `None` if the class hides it.
    pub reg: Option<RegId>,
    /// Value to be written — `None` for reads or if the class hides it.
    pub write_value: Option<Word>,
}

impl PendingView {
    /// The class-filtered view of `op`: exactly the fields the paper lets
    /// an adversary of `class` observe, every other field `None`.
    ///
    /// This is the single choke point of capability enforcement — every
    /// pending operation an adversary sees passes through it, so the
    /// property tests only need to check this function to know no
    /// strategy can observe beyond its class.
    pub fn filtered(op: MemOp, class: AdversaryClass) -> PendingView {
        match class {
            AdversaryClass::Oblivious => PendingView::default(),
            AdversaryClass::RwOblivious => PendingView {
                kind: None,
                reg: Some(op.reg()),
                write_value: None,
            },
            AdversaryClass::LocationOblivious => PendingView {
                kind: Some(op.kind()),
                reg: None,
                write_value: op.write_value(),
            },
            AdversaryClass::Adaptive => PendingView {
                kind: Some(op.kind()),
                reg: Some(op.reg()),
                write_value: op.write_value(),
            },
        }
    }
}

/// What the adversary may inspect when choosing the next process.
pub struct View<'a> {
    class: AdversaryClass,
    procs: &'a [ProcessState],
    steps: &'a StepCounts,
}

impl<'a> View<'a> {
    pub(crate) fn new(
        class: AdversaryClass,
        procs: &'a [ProcessState],
        steps: &'a StepCounts,
    ) -> Self {
        View {
            class,
            procs,
            steps,
        }
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Whether `pid` is schedulable: arrived, not crashed, not finished.
    pub fn is_active(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].can_step()
    }

    /// Whether `pid` has arrived (become live at least once). Processes
    /// held back by an arrival workload read as not arrived until the
    /// adversary injects their [`Injection::Arrive`].
    pub fn has_arrived(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].has_arrived()
    }

    /// Whether `pid` has crashed (and was not respawned since).
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].is_crashed()
    }

    /// Ids of all schedulable processes.
    pub fn active(&self) -> Vec<ProcessId> {
        (0..self.n())
            .map(ProcessId)
            .filter(|&p| self.is_active(p))
            .collect()
    }

    /// Number of schedulable processes, without allocating.
    pub fn active_count(&self) -> usize {
        self.procs.iter().filter(|p| p.can_step()).count()
    }

    /// The `i`-th active process in ascending id order, without allocating
    /// (`active()[i]`, but with no intermediate vector). `None` if fewer
    /// than `i + 1` processes are active.
    pub fn nth_active(&self, i: usize) -> Option<ProcessId> {
        (0..self.n())
            .map(ProcessId)
            .filter(|&p| self.is_active(p))
            .nth(i)
    }

    /// The class-filtered poised operation of `pid` (`None` if the process
    /// is finished, crashed, or has not arrived — a process that is not
    /// schedulable exposes nothing, so arrival workloads leak no pending
    /// operations ahead of time).
    pub fn pending(&self, pid: ProcessId) -> Option<PendingView> {
        let p = &self.procs[pid.index()];
        if !p.can_step() {
            return None;
        }
        p.pending().map(|op| PendingView::filtered(op, self.class))
    }

    /// Steps taken so far by `pid`.
    pub fn steps_of(&self, pid: ProcessId) -> u64 {
        self.steps.of(pid)
    }

    /// Total steps taken so far.
    pub fn total_steps(&self) -> u64 {
        self.steps.total()
    }
}

/// A process-lifecycle event injected by the adversary.
///
/// The executor drains injections before every scheduling decision (see
/// [`Adversary::inject`]) and applies them without per-step allocation:
/// the only allocating variant is [`Injection::Respawn`], which by nature
/// carries a freshly built protocol and only occurs on (rare) churn
/// events.
pub enum Injection {
    /// No lifecycle event pending.
    None,
    /// A not-yet-arrived process becomes live and gets poised on its
    /// first operation. Injecting this for a process that already
    /// arrived is an error.
    Arrive(ProcessId),
    /// The process crashes: it keeps consuming schedule slots but takes
    /// no further steps and never finishes. Crashing a finished or
    /// already-crashed process is a no-op.
    Crash(ProcessId),
    /// Churn: the slot's current process (crashed, finished, or live) is
    /// replaced by a fresh process running the given protocol with a new
    /// coin-flip stream.
    Respawn(ProcessId, Box<dyn Protocol>),
}

impl std::fmt::Debug for Injection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Injection::None => write!(f, "None"),
            Injection::Arrive(pid) => write!(f, "Arrive({pid:?})"),
            Injection::Crash(pid) => write!(f, "Crash({pid:?})"),
            Injection::Respawn(pid, _) => write!(f, "Respawn({pid:?}, _)"),
        }
    }
}

/// A scheduler controlling one execution: scheduling decisions plus
/// process-lifecycle injections.
///
/// Implementations must only use the information exposed through [`View`]
/// for their declared [`Adversary::class`]; the view enforces pending-op
/// filtering, and history access is deliberately not exposed through the
/// view (strategies that need it can record what they observe).
///
/// Pure scheduling policies should implement [`Strategy`] instead — every
/// strategy is an `Adversary` (with no injections) through a blanket
/// impl, and composes with arrival/fault workloads via
/// [`crate::scenario::Scenario`].
pub trait Adversary {
    /// The capability class, fixed per adversary.
    fn class(&self) -> AdversaryClass;

    /// The next lifecycle event to apply, or [`Injection::None`]. The
    /// executor calls this repeatedly (applying each event) until it
    /// returns `None`, before every scheduling decision.
    fn inject(&mut self, _view: &View<'_>) -> Injection {
        Injection::None
    }

    /// Choose the next process to take a step, or `None` to end the
    /// execution (crashing every unfinished process).
    fn next(&mut self, view: &View<'_>) -> Option<ProcessId>;
}

/// A pure scheduling policy: given the class-filtered view, pick the next
/// process. This is the composable unit of the scenario engine — the
/// same strategy runs standalone (every `Strategy` is an [`Adversary`]
/// via a blanket impl) or wrapped by a [`crate::scenario::Scenario`] that
/// layers arrivals and faults around it.
pub trait Strategy {
    /// The capability class, fixed per strategy.
    fn class(&self) -> AdversaryClass;

    /// Choose the next process to take a step, or `None` if the strategy
    /// has no process to schedule.
    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId>;
}

impl<S: Strategy> Adversary for S {
    fn class(&self) -> AdversaryClass {
        Strategy::class(self)
    }

    fn next(&mut self, view: &View<'_>) -> Option<ProcessId> {
        self.pick(view)
    }
}

/// Fair round-robin over unfinished processes until all finish.
///
/// Equivalent to an oblivious adversary playing the infinite round-robin
/// schedule (slots of finished processes are no-ops), hence classed
/// [`AdversaryClass::Oblivious`]. This is the standard "no crashes, fair
/// scheduling" environment.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    cursor: usize,
}

impl RoundRobin {
    /// Round-robin over `n` processes.
    pub fn new(n: usize) -> Self {
        RoundRobin { n, cursor: 0 }
    }
}

impl Strategy for RoundRobin {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        debug_assert_eq!(view.n(), self.n);
        for _ in 0..self.n {
            let pid = ProcessId(self.cursor);
            self.cursor = (self.cursor + 1) % self.n;
            if view.is_active(pid) {
                return Some(pid);
            }
        }
        None
    }
}

/// An oblivious adversary replaying a fixed [`Schedule`].
///
/// When the schedule is exhausted the execution ends — any unfinished
/// process is considered crashed. Use [`ObliviousAdversary::then_fair`] to
/// append fair round-robin completion (the "no crashes" convention used
/// when measuring step complexity of full executions).
#[derive(Debug, Clone)]
pub struct ObliviousAdversary {
    schedule: Schedule,
    cursor: usize,
    fair_tail: bool,
    rr_cursor: usize,
}

impl ObliviousAdversary {
    /// Replay `schedule`, then stop.
    pub fn new(schedule: Schedule) -> Self {
        ObliviousAdversary {
            schedule,
            cursor: 0,
            fair_tail: false,
            rr_cursor: 0,
        }
    }

    /// Replay the schedule, then round-robin until everyone finishes.
    pub fn then_fair(mut self) -> Self {
        self.fair_tail = true;
        self
    }
}

impl Strategy for ObliviousAdversary {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        while self.cursor < self.schedule.len() {
            let pid = self.schedule.steps()[self.cursor];
            self.cursor += 1;
            if pid.index() < view.n() && view.is_active(pid) {
                return Some(pid);
            }
        }
        if self.fair_tail {
            for _ in 0..view.n() {
                let pid = ProcessId(self.rr_cursor);
                self.rr_cursor = (self.rr_cursor + 1) % view.n();
                if view.is_active(pid) {
                    return Some(pid);
                }
            }
        }
        None
    }
}

/// Uniformly random choice among unfinished processes at every step.
///
/// Distributionally this is an oblivious adversary (the choice ignores all
/// execution content), and it is the workhorse schedule for the step-
/// complexity experiments.
#[derive(Debug, Clone)]
pub struct RandomSchedule {
    rng: SplitMix64,
}

impl RandomSchedule {
    /// Random scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomSchedule {
            rng: SplitMix64::new(seed ^ 0xada7_5c4e_d05c_4eed),
        }
    }
}

impl Strategy for RandomSchedule {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        // Allocation-free uniform choice: count the active processes, draw
        // an index, then walk to it. Chooses exactly the element
        // `view.active()[i]` would, so executions are bit-identical to the
        // allocating formulation this replaces.
        let active = view.active_count();
        if active == 0 {
            return None;
        }
        let i = self.rng.next_below(active as u64) as usize;
        view.nth_active(i)
    }
}

/// An adaptive adversary implemented by a closure over the (unfiltered-
/// within-class) view.
///
/// Convenient for one-off attack strategies in tests and experiments.
pub struct FnAdversary<F> {
    class: AdversaryClass,
    f: F,
}

impl<F> FnAdversary<F>
where
    F: FnMut(&View<'_>) -> Option<ProcessId>,
{
    /// Wrap `f` as an adversary of the given class.
    pub fn new(class: AdversaryClass, f: F) -> Self {
        FnAdversary { class, f }
    }
}

impl<F> Strategy for FnAdversary<F>
where
    F: FnMut(&View<'_>) -> Option<ProcessId>,
{
    fn class(&self) -> AdversaryClass {
        self.class
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        (self.f)(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Execution;
    use crate::memory::Memory;
    use crate::protocol::{Ctx, Poll, Protocol, Resume};

    /// Performs `k` writes to its own register, then finishes with 0.
    struct Writer {
        reg: RegId,
        left: u32,
    }

    impl Protocol for Writer {
        fn resume(&mut self, _input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
            if self.left == 0 {
                Poll::Done(0)
            } else {
                self.left -= 1;
                Poll::Op(MemOp::Write(self.reg, 1))
            }
        }
    }

    fn writer_execution(n: usize, writes: u32) -> Execution {
        let mut mem = Memory::new();
        let regs = mem.alloc(n as u64, "w");
        let protos: Vec<Box<dyn Protocol>> = (0..n)
            .map(|i| {
                Box::new(Writer {
                    reg: regs.get(i as u64),
                    left: writes,
                }) as Box<dyn Protocol>
            })
            .collect();
        Execution::new(mem, protos, 0)
    }

    #[test]
    fn filtering_per_class() {
        let op = MemOp::Write(RegId(7), 42);
        let obl = PendingView::filtered(op, AdversaryClass::Oblivious);
        assert_eq!(obl, PendingView::default());
        let rw = PendingView::filtered(op, AdversaryClass::RwOblivious);
        assert_eq!(rw.reg, Some(RegId(7)));
        assert_eq!(rw.kind, None);
        assert_eq!(rw.write_value, None);
        let loc = PendingView::filtered(op, AdversaryClass::LocationOblivious);
        assert_eq!(loc.reg, None);
        assert_eq!(loc.kind, Some(OpKind::Write));
        assert_eq!(loc.write_value, Some(42));
        let ad = PendingView::filtered(op, AdversaryClass::Adaptive);
        assert_eq!(ad.reg, Some(RegId(7)));
        assert_eq!(ad.kind, Some(OpKind::Write));
        assert_eq!(ad.write_value, Some(42));
    }

    #[test]
    fn read_filtering_has_no_value() {
        let op = MemOp::Read(RegId(3));
        let loc = PendingView::filtered(op, AdversaryClass::LocationOblivious);
        assert_eq!(loc.kind, Some(OpKind::Read));
        assert_eq!(loc.write_value, None);
    }

    #[test]
    fn round_robin_completes_everyone() {
        let res = writer_execution(3, 5).run(&mut RoundRobin::new(3));
        assert!(res.all_finished());
        assert_eq!(res.steps().total(), 15);
        assert_eq!(res.steps().max(), 5);
    }

    #[test]
    fn oblivious_stops_at_schedule_end() {
        let mut adv = ObliviousAdversary::new(Schedule::from_pids([0, 1]));
        let res = writer_execution(2, 5).run(&mut adv);
        assert!(!res.all_finished());
        assert_eq!(res.steps().total(), 2);
    }

    #[test]
    fn oblivious_then_fair_completes() {
        let mut adv = ObliviousAdversary::new(Schedule::from_pids([0, 0, 0])).then_fair();
        let res = writer_execution(2, 2).run(&mut adv);
        assert!(res.all_finished());
        assert_eq!(res.steps().total(), 4);
    }

    #[test]
    fn random_schedule_completes_everyone() {
        let res = writer_execution(4, 3).run(&mut RandomSchedule::new(9));
        assert!(res.all_finished());
        assert_eq!(res.steps().total(), 12);
    }

    #[test]
    fn fn_adversary_runs_one_process_solo() {
        let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
            view.is_active(ProcessId(1)).then_some(ProcessId(1))
        });
        let res = writer_execution(2, 4).run(&mut adv);
        assert_eq!(res.outcome(ProcessId(1)), Some(0));
        assert_eq!(res.outcome(ProcessId(0)), None);
        assert_eq!(res.steps().of(ProcessId(0)), 0);
    }

    #[test]
    fn adaptive_view_exposes_pending_details() {
        let mut seen_write = false;
        {
            let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
                let active = view.active();
                if let Some(&pid) = active.first() {
                    let pv = view.pending(pid).unwrap();
                    if pv.kind == Some(OpKind::Write) && pv.reg.is_some() {
                        seen_write = true;
                    }
                    Some(pid)
                } else {
                    None
                }
            });
            let res = writer_execution(2, 1).run(&mut adv);
            assert!(res.all_finished());
        }
        assert!(seen_write);
    }

    #[test]
    fn view_steps_accounting() {
        let mut max_seen = 0;
        {
            let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
                max_seen = max_seen.max(view.total_steps());
                view.active().first().copied()
            });
            let res = writer_execution(2, 3).run(&mut adv);
            assert!(res.all_finished());
        }
        assert_eq!(max_seen, 5, "last call sees all but the final step");
    }
}
