//! Deterministic, splittable pseudo-random number generation.
//!
//! Every simulated process owns a [`SplitMix64`] seeded from the execution
//! seed and the process id, so an execution is a pure function of
//! `(algorithm, schedule/adversary, seed)` — a property the experiments and
//! the exhaustive explorer rely on. SplitMix64 is the standard 64-bit
//! mixing generator (Steele, Lea & Flood 2014); it is tiny, fast, and has
//! no external dependencies.

/// The source of random decisions a protocol may draw from.
///
/// Protocols consume randomness only through this trait so that the
/// exhaustive explorer ([`crate::explore`]) can substitute a scripted
/// source and enumerate *all* coin outcomes, while normal executions use
/// [`SplitMix64`]. Every decision must have a finite domain: `choose(d)`
/// returns a uniform value in `0..d`, and the provided combinators reduce
/// richer distributions to such decisions.
pub trait Randomness {
    /// Uniform value in `0..domain`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `domain == 0`.
    fn choose(&mut self, domain: u64) -> u64;

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    ///
    /// Scripted sources may ignore the weight and explore both branches.
    fn bernoulli(&mut self, p: f64) -> bool;

    /// Fair coin.
    fn coin(&mut self) -> bool {
        self.choose(2) == 1
    }

    /// Sample `x ∈ {1, …, ell}` with `Pr[x = i] = 2^-i` for `i < ell` and
    /// `Pr[x = ell] = 2^-(ell-1)` — the distribution of the paper's
    /// Figure 1, line 3. Implemented by repeated fair coins so scripted
    /// sources explore it exhaustively.
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`.
    fn geometric_capped(&mut self, ell: u64) -> u64 {
        assert!(ell > 0, "geometric_capped needs ell >= 1");
        let mut x = 1;
        while x < ell {
            if self.coin() {
                return x;
            }
            x += 1;
        }
        ell
    }
}

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl Randomness for SplitMix64 {
    fn choose(&mut self, domain: u64) -> u64 {
        self.next_below(domain)
    }

    fn bernoulli(&mut self, p: f64) -> bool {
        SplitMix64::bernoulli(self, p)
    }

    fn coin(&mut self) -> bool {
        SplitMix64::coin(self)
    }

    fn geometric_capped(&mut self, ell: u64) -> u64 {
        SplitMix64::geometric_capped(self, ell)
    }
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent-looking stream for substream `index`.
    ///
    /// Used to give each process its own generator from one execution seed.
    pub fn split(seed: u64, index: u64) -> Self {
        let mut base = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15u64.rotate_left(7));
        let a = base.next_u64();
        let mut mixer = SplitMix64::new(a ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        // Burn a few outputs so small indices do not correlate.
        mixer.next_u64();
        mixer.next_u64();
        SplitMix64::new(mixer.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Multiply-shift rejection-free mapping is fine here: bounds are
        // tiny relative to 2^64, so modulo bias is ≤ bound/2^64 ≈ 0 for our
        // statistical purposes. Use 128-bit multiply for uniformity.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against 53-bit uniform.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Sample `x ∈ {1, …, ell}` with `Pr[x = i] = 2^-i` for `i < ell` and
    /// `Pr[x = ell] = 2^-(ell-1)` — the geometric distribution of the
    /// paper's Figure 1, line 3.
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`.
    pub fn geometric_capped(&mut self, ell: u64) -> u64 {
        assert!(ell > 0, "geometric_capped needs ell >= 1");
        let mut x = 1;
        while x < ell {
            if self.coin() {
                return x;
            }
            x += 1;
        }
        ell
    }

    /// Uniform `f64` in `[0,1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_streams_differ() {
        let mut a = SplitMix64::split(7, 0);
        let mut b = SplitMix64::split(7, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(SplitMix64::split(9, 3), SplitMix64::split(9, 3));
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(5);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut r = SplitMix64::new(11);
        let heads = (0..10_000).filter(|_| r.coin()).count();
        assert!((4600..5400).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SplitMix64::new(3);
        assert!((0..100).all(|_| r.bernoulli(1.0)));
        assert!((0..100).all(|_| !r.bernoulli(0.0)));
    }

    #[test]
    fn bernoulli_mid() {
        let mut r = SplitMix64::new(8);
        let hits = (0..20_000).filter(|_| r.bernoulli(0.25)).count();
        assert!((4400..5600).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn geometric_capped_distribution() {
        let mut r = SplitMix64::new(17);
        let ell = 6u64;
        let n = 60_000usize;
        let mut counts = vec![0usize; ell as usize + 1];
        for _ in 0..n {
            let x = r.geometric_capped(ell);
            assert!((1..=ell).contains(&x));
            counts[x as usize] += 1;
        }
        // Pr[x=1] = 1/2, Pr[x=2] = 1/4, and Pr[x=ell] = 2^-(ell-1).
        let p1 = counts[1] as f64 / n as f64;
        let p2 = counts[2] as f64 / n as f64;
        let pl = counts[ell as usize] as f64 / n as f64;
        assert!((p1 - 0.5).abs() < 0.02, "p1={p1}");
        assert!((p2 - 0.25).abs() < 0.02, "p2={p2}");
        let expect_l = 1.0 / (1u64 << (ell - 1)) as f64;
        assert!((pl - expect_l).abs() < 0.01, "pl={pl}");
    }

    #[test]
    fn geometric_capped_ell_one() {
        let mut r = SplitMix64::new(23);
        for _ in 0..50 {
            assert_eq!(r.geometric_capped(1), 1);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(31);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
