//! # rtas-sim — asynchronous shared-memory simulator
//!
//! A discrete, step-granular simulator of the asynchronous shared-memory
//! model used in Giakkoupis & Woelfel, *On the time and space complexity of
//! randomized test-and-set* (PODC 2012): `n` processes communicate through
//! atomic multi-reader multi-writer registers, scheduling is controlled by an
//! adversary, and processes may crash (equivalently: never be scheduled
//! again).
//!
//! The simulator provides:
//!
//! * [`memory`] — a register file with labeled regions, dense and lazy
//!   allocation, and exact space accounting (used to verify the paper's
//!   Θ(n) vs Θ(n³) space claims).
//! * [`protocol`] — algorithms written as resumable state machines
//!   ([`protocol::Protocol`]) composed through an executor-managed call stack; each
//!   shared-memory operation is one *step* in the paper's sense.
//! * [`adversary`] — the adversary hierarchy of the paper (adaptive,
//!   location-oblivious, R/W-oblivious, oblivious), with views filtered by
//!   construction so an adversary physically cannot see more than its class
//!   allows.
//! * [`executor`] — runs a set of processes against an adversary, recording
//!   per-process step counts and (optionally) the full history; supports
//!   mid-run lifecycle changes (late arrivals, crashes, churn respawns)
//!   without per-step allocation.
//! * [`scenario`] — composable workloads: one [`scenario::Scenario`]
//!   combines an arrival pattern, a fault plan, and a scheduling strategy
//!   into a ready adversary, with class enforcement preserved by
//!   construction.
//! * [`explore`] — an exhaustive interleaving + coin-outcome explorer
//!   (loom-style) used to verify safety of the 2- and 3-process building
//!   blocks over *all* schedules within bounded depth.
//! * [`rng`] — a deterministic, splittable PRNG so executions are
//!   reproducible from a single seed.
//!
//! ## Example
//!
//! A one-register "write then read" protocol run with two processes:
//!
//! ```
//! use rtas_sim::prelude::*;
//!
//! struct WriteThenRead { reg: RegId, state: u8 }
//! impl Protocol for WriteThenRead {
//!     fn resume(&mut self, input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
//!         match self.state {
//!             0 => { self.state = 1; Poll::Op(MemOp::Write(self.reg, 7)) }
//!             1 => { self.state = 2; Poll::Op(MemOp::Read(self.reg)) }
//!             _ => match input {
//!                 Resume::Read(v) => Poll::Done(v),
//!                 _ => unreachable!(),
//!             },
//!         }
//!     }
//! }
//!
//! let mut mem = Memory::new();
//! let reg = mem.alloc(1, "demo").start();
//! let procs = (0..2)
//!     .map(|_| Box::new(WriteThenRead { reg, state: 0 }) as Box<dyn Protocol>)
//!     .collect();
//! let mut adv = RoundRobin::new(2);
//! let result = Execution::new(mem, procs, 1234).run(&mut adv);
//! assert!(result.all_finished());
//! assert_eq!(result.outcome(ProcessId(0)), Some(7));
//! ```

pub mod adversary;
pub mod executor;
pub mod explore;
pub mod history;
pub mod memory;
pub mod metrics;
pub mod op;
pub mod protocol;
pub mod rng;
pub mod scenario;
pub mod schedule;
pub mod trace;
pub mod word;

/// Convenient glob import of the simulator's core types.
pub mod prelude {
    pub use crate::adversary::{
        Adversary, AdversaryClass, FnAdversary, Injection, ObliviousAdversary, PendingView,
        RandomSchedule, RoundRobin, Strategy, View,
    };
    pub use crate::executor::{Execution, ExecutionResult, RunOutcome, SubPoll, SubRuntime};
    pub use crate::explore::{explore, ExploreConfig, ExploreStats, Explored};
    pub use crate::history::RecordMode;
    pub use crate::memory::{Memory, RegRange, RegionStats};
    pub use crate::metrics::{Aggregate, StepCounts};
    pub use crate::op::{MemOp, OpKind};
    pub use crate::protocol::{boxed, ret, Const, Ctx, Notes, Poll, Protocol, Resume};
    pub use crate::rng::{Randomness, SplitMix64};
    pub use crate::scenario::{ArrivalSpec, FaultSpec, Scenario, ScenarioAdversary, StrategySpec};
    pub use crate::schedule::Schedule;
    pub use crate::word::{ProcessId, RegId, Word};
}
