//! The register file: labeled regions of atomic registers with exact space
//! accounting.
//!
//! Space complexity is one of the paper's two headline axes (Θ(n³) for the
//! original RatRace vs Θ(n) for the space-efficient version, and the
//! Ω(log n) lower bound), so the simulator tracks, per labeled region:
//!
//! * the number of *declared* registers (what the algorithm allocates), and
//! * the number of *touched* registers (read or written at least once).
//!
//! Regions may be **dense** (backed by a vector — the normal case) or
//! **lazy** (backed by a hash map — used for the original RatRace's Θ(n³)
//! tree and Θ(n²) grid, which must be declared but are barely touched).

use std::collections::HashMap;

use crate::word::{ProcessId, RegId, Word};

/// One atomic register cell: its value plus the id of the last writer.
///
/// The writer id implements the paper's *visibility* notion from Section 5
/// ("process q is visible on register r if r's value is (x, q)"): every
/// write implicitly carries the writer's identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cell {
    /// Current register value (initially 0).
    pub value: Word,
    /// Last writer, or `None` if never written (the paper's ⊥).
    pub writer: Option<ProcessId>,
}

/// A contiguous range of register ids, returned by allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegRange {
    start: RegId,
    len: u64,
}

impl RegRange {
    /// First register of the range.
    pub fn start(&self) -> RegId {
        self.start
    }

    /// Number of registers in the range.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th register of the range.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: u64) -> RegId {
        assert!(
            i < self.len,
            "register index {i} out of range 0..{}",
            self.len
        );
        self.start.offset(i)
    }

    /// Iterate over all register ids in the range.
    pub fn iter(&self) -> impl Iterator<Item = RegId> + '_ {
        (0..self.len).map(move |i| self.start.offset(i))
    }

    /// A sub-range of `len` registers starting at `offset`.
    ///
    /// Used to carve object-sized slices out of one big (possibly lazy)
    /// allocation, e.g. the per-node register blocks of RatRace trees.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds the range.
    pub fn sub(&self, offset: u64, len: u64) -> RegRange {
        assert!(
            offset + len <= self.len,
            "sub-range {offset}+{len} exceeds range of {}",
            self.len
        );
        RegRange {
            start: self.start.offset(offset),
            len,
        }
    }
}

/// Metadata about one allocated region.
#[derive(Debug, Clone)]
struct Region {
    label: String,
    start: RegId,
    len: u64,
}

/// Per-label space statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegionStats {
    /// Registers allocated under this label.
    pub declared: u64,
    /// Registers under this label that were read or written at least once.
    pub touched: u64,
}

/// The shared memory of a simulated execution.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    dense: Vec<Cell>,
    lazy: HashMap<u64, Cell>,
    lazy_next: u64,
    lazy_declared: u64,
    regions: Vec<Region>,
    /// Touched bits for dense registers, one bit per register. A bitset
    /// keeps the executor's read/write fast path cache-friendly and makes
    /// zeroing between trials a word-wise sweep.
    touched_dense: Vec<u64>,
    /// Number of set bits in `touched_dense`, maintained incrementally so
    /// [`Memory::touched_registers`] is O(1).
    touched_dense_count: u64,
    reads: u64,
    writes: u64,
}

impl Memory {
    /// An empty memory with no registers.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Allocate `count` dense registers under `label`.
    ///
    /// Dense registers are stored in a vector and count fully toward the
    /// memory footprint of the simulation itself — use [`Memory::alloc_lazy`]
    /// for structures that are declared huge but sparsely accessed.
    pub fn alloc(&mut self, count: u64, label: &str) -> RegRange {
        let start = RegId(self.dense.len() as u64);
        assert!(
            start.0 + count < RegId::LAZY_BASE,
            "dense register space exhausted"
        );
        self.dense
            .extend(std::iter::repeat_n(Cell::default(), count as usize));
        self.touched_dense.resize(self.dense.len().div_ceil(64), 0);
        self.regions.push(Region {
            label: label.to_string(),
            start,
            len: count,
        });
        RegRange { start, len: count }
    }

    /// Allocate `count` registers under `label`, materialized on first use.
    ///
    /// The region contributes `count` to the *declared* space but only the
    /// accessed registers consume host memory. This models the paper's
    /// original RatRace, whose primary tree declares Θ(n³) registers.
    pub fn alloc_lazy(&mut self, count: u64, label: &str) -> RegRange {
        let start = RegId(RegId::LAZY_BASE + self.lazy_next);
        self.lazy_next = self
            .lazy_next
            .checked_add(count)
            .expect("lazy register space exhausted");
        self.lazy_declared += count;
        self.regions.push(Region {
            label: label.to_string(),
            start,
            len: count,
        });
        RegRange { start, len: count }
    }

    fn check_allocated(&self, reg: RegId) {
        if reg.is_lazy() {
            assert!(
                reg.0 - RegId::LAZY_BASE < self.lazy_next,
                "access to unallocated lazy register {reg:?}"
            );
        } else {
            assert!(
                (reg.0 as usize) < self.dense.len(),
                "access to unallocated register {reg:?}"
            );
        }
    }

    /// Mark dense register `idx` as touched. `idx` must be in bounds.
    #[inline]
    fn touch_dense(&mut self, idx: usize) {
        let word = &mut self.touched_dense[idx >> 6];
        let bit = 1u64 << (idx & 63);
        self.touched_dense_count += u64::from(*word & bit == 0);
        *word |= bit;
    }

    /// Whether dense register `idx` was touched. `idx` must be in bounds.
    #[inline]
    fn dense_touched(&self, idx: usize) -> bool {
        self.touched_dense[idx >> 6] & (1u64 << (idx & 63)) != 0
    }

    /// Atomically read a register, recording the step.
    ///
    /// Returns the full cell so the executor can log visibility
    /// (value + last writer).
    ///
    /// # Panics
    ///
    /// Panics if `reg` was never allocated.
    #[inline]
    pub fn read(&mut self, reg: RegId) -> Cell {
        self.reads += 1;
        // Dense fast path: one u64 bounds probe doubles as the allocation
        // check, since lazy ids start at `RegId::LAZY_BASE`, far above any
        // dense length. Compared as u64 so lazy ids cannot truncate into
        // the dense range on 32-bit targets.
        if reg.0 < self.dense.len() as u64 {
            let idx = reg.0 as usize;
            self.touch_dense(idx);
            self.dense[idx]
        } else {
            self.read_slow(reg)
        }
    }

    #[cold]
    fn read_slow(&mut self, reg: RegId) -> Cell {
        self.check_allocated(reg);
        *self.lazy.entry(reg.0).or_default()
    }

    /// Atomically write `value` to `reg` on behalf of `writer`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` was never allocated.
    #[inline]
    pub fn write(&mut self, reg: RegId, value: Word, writer: ProcessId) {
        self.writes += 1;
        let cell = Cell {
            value,
            writer: Some(writer),
        };
        if reg.0 < self.dense.len() as u64 {
            let idx = reg.0 as usize;
            self.touch_dense(idx);
            self.dense[idx] = cell;
        } else {
            self.write_slow(reg, cell);
        }
    }

    #[cold]
    fn write_slow(&mut self, reg: RegId, cell: Cell) {
        self.check_allocated(reg);
        self.lazy.insert(reg.0, cell);
    }

    /// Inspect a register without counting it as a step or touching it.
    ///
    /// Intended for assertions and experiment post-processing, not for
    /// protocol logic.
    pub fn peek(&self, reg: RegId) -> Cell {
        if reg.is_lazy() {
            self.lazy.get(&reg.0).copied().unwrap_or_default()
        } else {
            self.dense.get(reg.0 as usize).copied().unwrap_or_default()
        }
    }

    /// Total number of declared registers (dense + lazy).
    pub fn declared_registers(&self) -> u64 {
        self.dense.len() as u64 + self.lazy_declared
    }

    /// Number of densely allocated registers (excludes lazy regions).
    pub fn dense_registers(&self) -> u64 {
        self.dense.len() as u64
    }

    /// Number of registers that were read or written at least once. O(1):
    /// both constituents are maintained incrementally.
    pub fn touched_registers(&self) -> u64 {
        self.touched_dense_count + self.lazy.len() as u64
    }

    /// Total shared-memory operations executed so far (reads + writes).
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Number of read operations executed.
    pub fn read_ops(&self) -> u64 {
        self.reads
    }

    /// Number of write operations executed.
    pub fn write_ops(&self) -> u64 {
        self.writes
    }

    /// Space statistics grouped by region label.
    ///
    /// Labels used by multiple regions are merged (e.g. `n` splitters each
    /// allocating under `"splitter"`).
    pub fn stats_by_label(&self) -> HashMap<String, RegionStats> {
        let mut map: HashMap<String, RegionStats> = HashMap::new();
        for region in &self.regions {
            let entry = map.entry(region.label.clone()).or_default();
            entry.declared += region.len;
            for i in 0..region.len {
                let id = region.start.offset(i);
                let touched = if id.is_lazy() {
                    self.lazy.contains_key(&id.0)
                } else {
                    self.dense_touched(id.0 as usize)
                };
                if touched {
                    entry.touched += 1;
                }
            }
        }
        map
    }

    /// Reset all registers to their initial state, keeping allocations.
    ///
    /// Useful for re-running an algorithm on the same structure with a
    /// different seed or schedule without re-allocating.
    pub fn reset_values(&mut self) {
        for cell in &mut self.dense {
            *cell = Cell::default();
        }
        for w in &mut self.touched_dense {
            *w = 0;
        }
        self.touched_dense_count = 0;
        self.lazy.clear();
        self.reads = 0;
        self.writes = 0;
    }

    /// Synonym for [`Memory::reset_values`]: the between-trials reset used
    /// by the allocation-light executor reuse path ([`crate::executor::Execution::reset`]).
    pub fn reset(&mut self) {
        self.reset_values();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw() {
        let mut m = Memory::new();
        let r = m.alloc(3, "a");
        assert_eq!(r.len(), 3);
        assert_eq!(m.read(r.get(0)).value, 0);
        assert_eq!(m.read(r.get(0)).writer, None);
        m.write(r.get(1), 42, ProcessId(2));
        let c = m.read(r.get(1));
        assert_eq!(c.value, 42);
        assert_eq!(c.writer, Some(ProcessId(2)));
    }

    #[test]
    fn initial_value_is_zero() {
        let mut m = Memory::new();
        let r = m.alloc(8, "zeros");
        assert!(r.iter().all(|id| m.read(id) == Cell::default()));
    }

    #[test]
    fn lazy_regions_declare_without_materializing() {
        let mut m = Memory::new();
        let big = m.alloc_lazy(1_000_000_000, "huge");
        assert_eq!(m.declared_registers(), 1_000_000_000);
        assert_eq!(m.touched_registers(), 0);
        m.write(big.get(999_999_999), 1, ProcessId(0));
        assert_eq!(m.touched_registers(), 1);
        assert_eq!(m.read(big.get(999_999_999)).value, 1);
        assert_eq!(m.read(big.get(0)).value, 0);
    }

    #[test]
    fn touched_counts_reads_too() {
        let mut m = Memory::new();
        let r = m.alloc(4, "t");
        m.read(r.get(2));
        assert_eq!(m.touched_registers(), 1);
    }

    #[test]
    fn op_counters() {
        let mut m = Memory::new();
        let r = m.alloc(1, "ops");
        m.read(r.get(0));
        m.write(r.get(0), 1, ProcessId(0));
        m.read(r.get(0));
        assert_eq!(m.read_ops(), 2);
        assert_eq!(m.write_ops(), 1);
        assert_eq!(m.total_ops(), 3);
    }

    #[test]
    fn stats_by_label_merges() {
        let mut m = Memory::new();
        let a1 = m.alloc(2, "splitter");
        let _a2 = m.alloc(2, "splitter");
        let b = m.alloc_lazy(100, "grid");
        m.write(a1.get(0), 1, ProcessId(0));
        m.write(b.get(5), 1, ProcessId(0));
        let stats = m.stats_by_label();
        assert_eq!(
            stats["splitter"],
            RegionStats {
                declared: 4,
                touched: 1
            }
        );
        assert_eq!(
            stats["grid"],
            RegionStats {
                declared: 100,
                touched: 1
            }
        );
    }

    #[test]
    fn peek_does_not_count() {
        let mut m = Memory::new();
        let r = m.alloc(1, "p");
        m.peek(r.get(0));
        assert_eq!(m.total_ops(), 0);
        assert_eq!(m.touched_registers(), 0);
    }

    #[test]
    fn reset_values_clears_state_keeps_allocation() {
        let mut m = Memory::new();
        let r = m.alloc(2, "r");
        let l = m.alloc_lazy(10, "l");
        m.write(r.get(0), 9, ProcessId(1));
        m.write(l.get(3), 8, ProcessId(1));
        m.reset_values();
        assert_eq!(m.declared_registers(), 12);
        assert_eq!(m.touched_registers(), 0);
        assert_eq!(m.total_ops(), 0);
        assert_eq!(m.peek(r.get(0)), Cell::default());
        assert_eq!(m.peek(l.get(3)), Cell::default());
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_unallocated_panics() {
        let mut m = Memory::new();
        m.read(RegId(0));
    }

    #[test]
    #[should_panic(expected = "unallocated lazy")]
    fn read_unallocated_lazy_panics() {
        let mut m = Memory::new();
        m.read(RegId(RegId::LAZY_BASE));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_get_out_of_bounds_panics() {
        let mut m = Memory::new();
        let r = m.alloc(2, "x");
        r.get(2);
    }

    #[test]
    fn range_iter_yields_all() {
        let mut m = Memory::new();
        let r = m.alloc(3, "it");
        let ids: Vec<_> = r.iter().collect();
        assert_eq!(ids, vec![r.get(0), r.get(1), r.get(2)]);
        assert!(!r.is_empty());
        assert!(m.alloc(0, "empty").is_empty());
    }
}
