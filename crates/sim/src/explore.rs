//! Exhaustive exploration of schedules × coin outcomes.
//!
//! The offline crate set has no `loom`, so this module provides the
//! equivalent for our simulated machine: a depth-first enumeration of
//! **every** adversarial schedule and **every** coin outcome of a small
//! system (2–3 processes, bounded steps), invoking a checker on each
//! complete execution. The building blocks of the paper — splitters, the
//! 2-process leader election, the 3-process leader election, TAS-from-LE —
//! are verified this way: within the explored bounds the safety properties
//! are *proved*, not sampled.
//!
//! Random decisions are intercepted through [`crate::rng::Randomness`]:
//! every decision has a finite domain, so the decision tree (interleaved
//! scheduling choices and coin choices) is finite once the step budget is
//! bounded. Executions are replayed from scratch along each path; protocol
//! states are tiny, so this is fast up to millions of leaves.

use crate::executor::SubRuntime;
use crate::memory::Memory;
use crate::op::MemOp;
use crate::protocol::{Ctx, Notes, Protocol, Resume};
use crate::rng::Randomness;
use crate::word::{ProcessId, Word};

/// One entry of a decision script: the domain that was offered and the
/// branch that was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Decision {
    domain: u64,
    chosen: u64,
}

/// A scripted randomness source: replays recorded coin decisions and flags
/// when fresh randomness is demanded beyond the script.
struct ScriptCursor<'a> {
    script: &'a [Decision],
    pos: usize,
    /// Domain of the first unscripted decision encountered, if any.
    need: Option<u64>,
}

impl Randomness for ScriptCursor<'_> {
    fn choose(&mut self, domain: u64) -> u64 {
        assert!(domain > 0, "choose with zero domain");
        if self.need.is_some() {
            // Already off-script: values are throwaway, the replay will be
            // discarded and restarted with a longer script.
            return 0;
        }
        if self.pos < self.script.len() {
            let d = self.script[self.pos];
            assert_eq!(
                d.domain, domain,
                "replay divergence: script domain {} vs requested {}",
                d.domain, domain
            );
            self.pos += 1;
            d.chosen
        } else {
            self.need = Some(domain);
            0
        }
    }

    fn bernoulli(&mut self, _p: f64) -> bool {
        // Exploration ignores weights: both branches are enumerated.
        self.choose(2) == 1
    }
}

/// Result of one completely explored execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explored {
    /// Final outcome per process (`None` = still running when the per-path
    /// step budget ran out).
    pub outcomes: Vec<Option<Word>>,
    /// Total shared-memory steps taken on this path.
    pub total_steps: u64,
    /// Whether the path was truncated by the step budget.
    pub truncated: bool,
}

impl Explored {
    /// Ids of processes whose outcome equals `value`.
    pub fn with_outcome(&self, value: Word) -> Vec<ProcessId> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(value))
            .map(|(i, _)| ProcessId(i))
            .collect()
    }

    /// Whether all processes finished on this path.
    pub fn all_finished(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_some())
    }
}

/// Configuration of an exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Per-path cap on total shared-memory steps. Paths hitting the cap are
    /// reported with `truncated = true`.
    pub max_steps: u64,
    /// Global cap on the number of explored complete paths.
    ///
    /// # Panics
    ///
    /// [`explore`] panics if the tree has more leaves than this — raise the
    /// limit or tighten the step budget.
    pub max_paths: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 64,
            max_paths: 20_000_000,
        }
    }
}

/// Statistics returned by [`explore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Number of complete paths (leaves) visited.
    pub paths: u64,
    /// Number of paths truncated by the step budget.
    pub truncated_paths: u64,
    /// Maximum decision depth reached.
    pub max_depth: usize,
}

enum ReplayEnd {
    /// Execution finished (or was truncated); leaf reached.
    Leaf(Explored),
    /// A fresh decision with this domain is required at the current depth.
    Need(u64),
}

/// Replay one path given the decision script. The first `script.len()`
/// decisions are forced; if the execution demands another decision, report
/// its domain instead of finishing.
fn replay<F>(factory: &F, script: &[Decision], max_steps: u64) -> ReplayEnd
where
    F: Fn() -> (Memory, Vec<Box<dyn Protocol>>),
{
    let (mut memory, protocols) = factory();
    let n = protocols.len();
    let mut runtimes: Vec<SubRuntime> = protocols.into_iter().map(SubRuntime::new).collect();
    let mut notes = vec![Notes::default(); n];
    let mut pos = 0usize; // cursor into `script`
    let mut steps = 0u64;

    // Advance a process until poised/finished, consuming coin decisions.
    // Returns the domain of a missing decision, if one was hit.
    macro_rules! advance {
        ($i:expr) => {{
            let mut cur = ScriptCursor {
                script,
                pos,
                need: None,
            };
            cur.pos = pos;
            let mut ctx = Ctx {
                pid: ProcessId($i),
                rng: &mut cur,
                notes: &mut notes[$i],
            };
            let _ = runtimes[$i].advance(&mut ctx);
            let need = cur.need;
            let new_pos = cur.pos;
            match need {
                Some(d) => Some(d),
                None => {
                    pos = new_pos;
                    None
                }
            }
        }};
    }

    for i in 0..n {
        if let Some(d) = advance!(i) {
            return ReplayEnd::Need(d);
        }
    }

    loop {
        let active: Vec<usize> = (0..n)
            .filter(|&i| runtimes[i].finished().is_none())
            .collect();
        if active.is_empty() || steps >= max_steps {
            return ReplayEnd::Leaf(Explored {
                outcomes: (0..n).map(|i| runtimes[i].finished()).collect(),
                total_steps: steps,
                truncated: !active.is_empty(),
            });
        }
        // Scheduling decision: which active process steps next.
        let idx = if active.len() == 1 {
            0
        } else if pos < script.len() {
            let d = script[pos];
            assert_eq!(d.domain, active.len() as u64, "schedule domain divergence");
            pos += 1;
            d.chosen as usize
        } else {
            return ReplayEnd::Need(active.len() as u64);
        };
        let i = active[idx];
        let op = runtimes[i].pending().expect("active process not poised");
        let input = match op {
            MemOp::Read(reg) => Resume::Read(memory.read(reg).value),
            MemOp::Write(reg, value) => {
                memory.write(reg, value, ProcessId(i));
                Resume::Wrote
            }
        };
        steps += 1;
        runtimes[i].feed(input);
        if let Some(d) = advance!(i) {
            return ReplayEnd::Need(d);
        }
    }
}

/// Exhaustively explore every schedule and coin outcome of the system
/// produced by `factory`, calling `check` on each complete path.
///
/// `factory` must be deterministic: each call must build an identical
/// initial system (fresh memory + fresh protocol states).
///
/// # Panics
///
/// Panics if the number of paths exceeds `config.max_paths`, or if a
/// replay diverges (which indicates a non-deterministic factory).
pub fn explore<F, C>(factory: F, config: ExploreConfig, mut check: C) -> ExploreStats
where
    F: Fn() -> (Memory, Vec<Box<dyn Protocol>>),
    C: FnMut(&Explored),
{
    let mut script: Vec<Decision> = Vec::new();
    let mut stats = ExploreStats::default();
    loop {
        match replay(&factory, &script, config.max_steps) {
            ReplayEnd::Need(domain) => {
                script.push(Decision { domain, chosen: 0 });
                stats.max_depth = stats.max_depth.max(script.len());
            }
            ReplayEnd::Leaf(explored) => {
                stats.paths += 1;
                if explored.truncated {
                    stats.truncated_paths += 1;
                }
                assert!(
                    stats.paths <= config.max_paths,
                    "exploration exceeded {} paths",
                    config.max_paths
                );
                check(&explored);
                // Backtrack: advance the deepest decision that has
                // remaining branches.
                while let Some(last) = script.last() {
                    if last.chosen + 1 < last.domain {
                        break;
                    }
                    script.pop();
                }
                match script.last_mut() {
                    Some(last) => last.chosen += 1,
                    None => return stats,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Poll;
    use crate::word::RegId;

    /// Writes its id then reads, returning the value seen.
    struct WriteRead {
        reg: RegId,
        state: u8,
    }

    impl Protocol for WriteRead {
        fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
            match self.state {
                0 => {
                    self.state = 1;
                    Poll::Op(MemOp::Write(self.reg, ctx.pid.index() as Word + 1))
                }
                1 => {
                    self.state = 2;
                    Poll::Op(MemOp::Read(self.reg))
                }
                _ => Poll::Done(input.read_value()),
            }
        }
    }

    /// Flips one fair coin, returns it; no shared memory.
    struct OneCoin;
    impl Protocol for OneCoin {
        fn resume(&mut self, _input: Resume, ctx: &mut Ctx<'_>) -> Poll {
            Poll::Done(ctx.rng.coin() as Word)
        }
    }

    #[test]
    fn enumerates_all_interleavings_of_two_write_read() {
        // 2 processes × 2 ops each: the number of interleavings is
        // C(4,2) = 6; scheduling decisions only exist while both active.
        let mut outcomes = std::collections::HashSet::new();
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let reg = mem.alloc(1, "t").start();
                let protos: Vec<Box<dyn Protocol>> = (0..2)
                    .map(|_| Box::new(WriteRead { reg, state: 0 }) as Box<dyn Protocol>)
                    .collect();
                (mem, protos)
            },
            ExploreConfig::default(),
            |e| {
                assert!(e.all_finished());
                outcomes.insert((e.outcomes[0], e.outcomes[1]));
            },
        );
        assert_eq!(stats.paths, 6);
        assert_eq!(stats.truncated_paths, 0);
        // Possible results: each process reads 1 or 2 depending on order,
        // but its own write always happened, so reads see the last write.
        assert!(outcomes.contains(&(Some(2), Some(2)))); // W0 W1 R0 R1
        assert!(outcomes.contains(&(Some(1), Some(1)))); // W1 W0 R1 R0
        assert!(outcomes.contains(&(Some(1), Some(2)))); // solo runs
                                                         // (2,1) would need both writes to precede each other — impossible.
        assert!(!outcomes.contains(&(Some(2), Some(1))));
    }

    #[test]
    fn enumerates_coin_outcomes() {
        let mut seen = std::collections::HashSet::new();
        let stats = explore(
            || (Memory::new(), vec![Box::new(OneCoin) as Box<dyn Protocol>]),
            ExploreConfig::default(),
            |e| {
                seen.insert(e.outcomes[0]);
            },
        );
        assert_eq!(stats.paths, 2);
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn coins_and_schedules_multiply() {
        // Two OneCoin processes: no shared ops, so no scheduling decisions;
        // 2 × 2 coin outcomes.
        let stats = explore(
            || {
                (
                    Memory::new(),
                    (0..2)
                        .map(|_| Box::new(OneCoin) as Box<dyn Protocol>)
                        .collect(),
                )
            },
            ExploreConfig::default(),
            |_| {},
        );
        assert_eq!(stats.paths, 4);
    }

    #[test]
    fn truncation_is_reported() {
        struct Spin {
            reg: RegId,
        }
        impl Protocol for Spin {
            fn resume(&mut self, _input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
                Poll::Op(MemOp::Read(self.reg))
            }
        }
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let reg = mem.alloc(1, "s").start();
                (mem, vec![Box::new(Spin { reg }) as Box<dyn Protocol>])
            },
            ExploreConfig {
                max_steps: 5,
                max_paths: 10,
            },
            |e| {
                assert!(e.truncated);
                assert_eq!(e.total_steps, 5);
                assert_eq!(e.outcomes[0], None);
            },
        );
        assert_eq!(stats.paths, 1);
        assert_eq!(stats.truncated_paths, 1);
    }

    #[test]
    fn geometric_capped_explores_all_branches() {
        struct Geo;
        impl Protocol for Geo {
            fn resume(&mut self, _input: Resume, ctx: &mut Ctx<'_>) -> Poll {
                Poll::Done(ctx.rng.geometric_capped(3))
            }
        }
        let mut seen = std::collections::HashSet::new();
        explore(
            || (Memory::new(), vec![Box::new(Geo) as Box<dyn Protocol>]),
            ExploreConfig::default(),
            |e| {
                seen.insert(e.outcomes[0].unwrap());
            },
        );
        assert_eq!(seen, [1, 2, 3].into_iter().collect());
    }
}
