//! Shared-memory operations and their adversary-facing descriptions.

use crate::word::{RegId, Word};

/// A single shared-memory operation — one *step* in the paper's complexity
/// measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Atomically read a register.
    Read(RegId),
    /// Atomically write a value to a register.
    Write(RegId, Word),
}

impl MemOp {
    /// The register this operation targets.
    pub fn reg(&self) -> RegId {
        match *self {
            MemOp::Read(r) | MemOp::Write(r, _) => r,
        }
    }

    /// The kind of this operation.
    pub fn kind(&self) -> OpKind {
        match self {
            MemOp::Read(_) => OpKind::Read,
            MemOp::Write(_, _) => OpKind::Write,
        }
    }

    /// The value to be written, if this is a write.
    pub fn write_value(&self) -> Option<Word> {
        match *self {
            MemOp::Write(_, v) => Some(v),
            MemOp::Read(_) => None,
        }
    }
}

/// Read vs write, without operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read operation.
    Read,
    /// A write operation.
    Write,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = MemOp::Read(RegId(3));
        let w = MemOp::Write(RegId(4), 9);
        assert_eq!(r.reg(), RegId(3));
        assert_eq!(w.reg(), RegId(4));
        assert_eq!(r.kind(), OpKind::Read);
        assert_eq!(w.kind(), OpKind::Write);
        assert_eq!(r.write_value(), None);
        assert_eq!(w.write_value(), Some(9));
    }
}
