//! Step-complexity accounting.
//!
//! The paper measures *individual step complexity*: the maximum, over all
//! processes, of the number of shared-memory steps the process takes.
//! Contention `k` is the number of processes that take at least one step.

use crate::word::ProcessId;

/// Per-process and aggregate step counts for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepCounts {
    per_process: Vec<u64>,
    total: u64,
}

impl StepCounts {
    /// Counts for `n` processes, all zero.
    pub fn new(n: usize) -> Self {
        StepCounts {
            per_process: vec![0; n],
            total: 0,
        }
    }

    /// Zero all counts for `n` processes, reusing the allocation.
    pub fn reset(&mut self, n: usize) {
        self.per_process.clear();
        self.per_process.resize(n, 0);
        self.total = 0;
    }

    /// Record one step by `pid`.
    pub fn bump(&mut self, pid: ProcessId) {
        self.per_process[pid.index()] += 1;
        self.total += 1;
    }

    /// Steps taken by `pid`.
    pub fn of(&self, pid: ProcessId) -> u64 {
        self.per_process[pid.index()]
    }

    /// Maximum steps taken by any process — the paper's individual step
    /// complexity of this execution.
    pub fn max(&self) -> u64 {
        self.per_process.iter().copied().max().unwrap_or(0)
    }

    /// Total steps taken by all processes. O(1): the executor's scheduler
    /// loop checks this against the step cap on every step.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Contention: the number of processes that took at least one step.
    pub fn contention(&self) -> usize {
        self.per_process.iter().filter(|&&s| s > 0).count()
    }

    /// Per-process counts, indexed by process id.
    pub fn as_slice(&self) -> &[u64] {
        &self.per_process
    }
}

/// Online mean/max aggregator for quick in-crate measurements (unit
/// tests, single executions).
///
/// Experiment sweeps use the distribution-aware `StatsAccumulator` in
/// the bench crate (`rtas-bench`) instead, which adds variance,
/// quantiles, and confidence intervals; `Aggregate` stays the
/// dependency-free summary for code inside the simulator workspace that
/// only needs a mean and a maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Aggregate {
    count: u64,
    sum: f64,
    max: f64,
}

impl Aggregate {
    /// Empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Mean of observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum observation (0 if none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counts_basics() {
        let mut s = StepCounts::new(3);
        s.bump(ProcessId(0));
        s.bump(ProcessId(0));
        s.bump(ProcessId(2));
        assert_eq!(s.of(ProcessId(0)), 2);
        assert_eq!(s.of(ProcessId(1)), 0);
        assert_eq!(s.max(), 2);
        assert_eq!(s.total(), 3);
        assert_eq!(s.contention(), 2);
        assert_eq!(s.as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn empty_counts() {
        let s = StepCounts::new(0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.total(), 0);
        assert_eq!(s.contention(), 0);
    }

    #[test]
    fn aggregate_mean_max() {
        let mut a = Aggregate::new();
        assert_eq!(a.mean(), 0.0);
        a.push(2.0);
        a.push(4.0);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.count(), 2);
    }
}
