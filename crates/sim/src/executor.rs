//! Driving protocols against an adversary.
//!
//! [`Execution`] owns the memory and one [`SubRuntime`] per process. Each
//! iteration of [`Execution::run`]:
//!
//! 1. every live process is *poised* on one committed shared-memory
//!    operation (produced by its protocol stack),
//! 2. the adversary inspects a class-filtered [`crate::adversary::View`]
//!    and picks the next process,
//! 3. the chosen process's operation executes atomically (one *step*), and
//!    its protocol advances — flipping local coins as needed — until it is
//!    poised again or finished.
//!
//! Scheduling a finished process is a no-op that consumes the schedule slot
//! but no step, matching the convention that a crashed/finished process
//! simply takes no further steps.
//!
//! ## Process lifecycle
//!
//! Beyond *live* and *finished*, the executor natively supports workload-
//! driven lifecycle changes so a process can become live or dead mid-run
//! without any per-step allocation:
//!
//! * **late arrival** — a process held back with [`Execution::hold_arrival`]
//!   takes no part in the execution (its pending operation is hidden from
//!   the adversary) until the adversary injects
//!   [`Injection::Arrive`](crate::adversary::Injection), at which point it
//!   advances to its first poised operation;
//! * **crash** — [`Injection::Crash`](crate::adversary::Injection) makes a
//!   process permanently unschedulable; slots spent on it are consumed
//!   without a step, exactly like slots spent on finished processes;
//! * **churn** — [`Injection::Respawn`](crate::adversary::Injection)
//!   replaces a slot's process (typically a crashed one) with a fresh
//!   protocol and a fresh coin-flip stream.
//!
//! Injections are drained from [`Adversary::inject`] before every
//! scheduling decision; adversaries that do not override it (all plain
//! [`crate::adversary::Strategy`] policies) run exactly as before.

use crate::adversary::{Adversary, Injection, View};
use crate::history::{Event, History, RecordMode};
use crate::memory::Memory;
use crate::metrics::StepCounts;
use crate::op::{MemOp, OpKind};
use crate::protocol::{Ctx, Notes, Poll, Protocol, Resume};
use crate::rng::SplitMix64;
use crate::word::{ProcessId, Word};

/// A protocol call stack plus the bookkeeping to drive it.
///
/// This is the reusable core of the per-process runtime; Section 4's
/// combiner also embeds two `SubRuntime`s inside a single process to
/// interleave RatRace with another algorithm.
pub struct SubRuntime {
    stack: Vec<Box<dyn Protocol>>,
    next_input: Option<Resume>,
    pending: Option<MemOp>,
    finished: Option<Word>,
}

impl std::fmt::Debug for SubRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubRuntime")
            .field("depth", &self.stack.len())
            .field("pending", &self.pending)
            .field("finished", &self.finished)
            .finish()
    }
}

/// What a [`SubRuntime::advance`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubPoll {
    /// The runtime is poised on this operation; execute it and call
    /// [`SubRuntime::feed`] with the result.
    NeedsOp(MemOp),
    /// The root protocol finished with this value.
    Finished(Word),
}

impl SubRuntime {
    /// A runtime that will run `root` from its start.
    pub fn new(root: Box<dyn Protocol>) -> Self {
        SubRuntime {
            stack: vec![root],
            next_input: Some(Resume::Start),
            pending: None,
            finished: None,
        }
    }

    /// Rewind this runtime to run `root` from its start, reusing the stack
    /// allocation. Part of the allocation-light trial loop (see
    /// [`Execution::reset`]).
    pub fn reset(&mut self, root: Box<dyn Protocol>) {
        self.stack.clear();
        self.stack.push(root);
        self.next_input = Some(Resume::Start);
        self.pending = None;
        self.finished = None;
    }

    /// The operation this runtime is currently poised on, if any.
    pub fn pending(&self) -> Option<MemOp> {
        self.pending
    }

    /// The final result, if the root protocol finished.
    pub fn finished(&self) -> Option<Word> {
        self.finished
    }

    /// Deliver the result of the pending operation.
    ///
    /// # Panics
    ///
    /// Panics if there is no pending operation or the resume kind does not
    /// match it (a read must be fed [`Resume::Read`], a write
    /// [`Resume::Wrote`]).
    pub fn feed(&mut self, input: Resume) {
        let op = self.pending.take().expect("feed without pending op");
        match (op.kind(), input) {
            (OpKind::Read, Resume::Read(_)) | (OpKind::Write, Resume::Wrote) => {}
            (k, i) => panic!("resume {i:?} does not match pending {k:?}"),
        }
        self.next_input = Some(input);
    }

    /// Drive the stack until it is poised on an operation or finished.
    ///
    /// # Panics
    ///
    /// Panics if called while an operation is pending and unfed, or after
    /// the runtime finished.
    pub fn advance(&mut self, ctx: &mut Ctx<'_>) -> SubPoll {
        assert!(self.pending.is_none(), "advance with unfed pending op");
        if let Some(v) = self.finished {
            return SubPoll::Finished(v);
        }
        loop {
            let input = self.next_input.take().expect("runtime missing input");
            let top = self.stack.last_mut().expect("runtime with empty stack");
            match top.resume(input, ctx) {
                Poll::Op(op) => {
                    self.pending = Some(op);
                    return SubPoll::NeedsOp(op);
                }
                Poll::Call(child) => {
                    self.stack.push(child);
                    self.next_input = Some(Resume::Start);
                }
                Poll::Done(v) => {
                    self.stack.pop();
                    if self.stack.is_empty() {
                        self.finished = Some(v);
                        return SubPoll::Finished(v);
                    }
                    self.next_input = Some(Resume::Child(v));
                }
            }
        }
    }
}

/// Lifecycle of a process slot inside an [`Execution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Liveness {
    /// Held back by an arrival workload; invisible and unschedulable.
    NotArrived,
    /// Arrived and participating (may have finished its protocol).
    Live,
    /// Crashed; consumes schedule slots but takes no steps.
    Crashed,
}

/// Per-process state inside an [`Execution`].
pub(crate) struct ProcessState {
    pub(crate) runtime: SubRuntime,
    pub(crate) rng: SplitMix64,
    pub(crate) notes: Notes,
    pub(crate) liveness: Liveness,
}

impl ProcessState {
    pub(crate) fn pending(&self) -> Option<MemOp> {
        self.runtime.pending()
    }

    pub(crate) fn finished(&self) -> Option<Word> {
        self.runtime.finished()
    }

    /// Live and not finished: may be scheduled for a step.
    pub(crate) fn can_step(&self) -> bool {
        self.liveness == Liveness::Live && self.runtime.finished().is_none()
    }

    pub(crate) fn has_arrived(&self) -> bool {
        self.liveness != Liveness::NotArrived
    }

    pub(crate) fn is_crashed(&self) -> bool {
        self.liveness == Liveness::Crashed
    }
}

/// A configured execution: memory, processes, and accounting.
pub struct Execution {
    memory: Memory,
    procs: Vec<ProcessState>,
    steps: StepCounts,
    history: History,
    step_cap: u64,
    global_step: u64,
    seed: u64,
    /// Number of live processes whose protocol has not finished.
    /// Maintained incrementally so the scheduler loop checks completion
    /// in O(1) instead of scanning all processes every step.
    live: usize,
    /// Number of processes held back by [`Execution::hold_arrival`] that
    /// have not yet been injected as arrived.
    not_arrived: usize,
    /// Number of crashed processes.
    crashed: usize,
    /// Respawns applied so far (distinct RNG streams for fresh processes).
    respawns: u64,
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution")
            .field("processes", &self.procs.len())
            .field("global_step", &self.global_step)
            .finish()
    }
}

/// Summary of one [`Execution::run_in_place`] call.
///
/// Deliberately `Copy` and allocation-free; detailed results stay inside
/// the [`Execution`] and are read through its accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Whether the execution was stopped by the safety step cap.
    pub hit_cap: bool,
    /// Number of processes whose protocol finished.
    pub finished: usize,
    /// Total number of processes.
    pub processes: usize,
}

impl RunOutcome {
    /// Whether every process finished its protocol.
    pub fn all_finished(&self) -> bool {
        self.finished == self.processes
    }
}

/// The outcome of a completed [`Execution::run`].
#[derive(Debug)]
pub struct ExecutionResult {
    outcomes: Vec<Option<Word>>,
    steps: StepCounts,
    history: History,
    memory: Memory,
    hit_cap: bool,
}

impl ExecutionResult {
    /// The result of process `pid`'s protocol, or `None` if it never
    /// finished (crashed / schedule ended / step cap).
    pub fn outcome(&self, pid: ProcessId) -> Option<Word> {
        self.outcomes[pid.index()]
    }

    /// All outcomes, indexed by process id.
    pub fn outcomes(&self) -> &[Option<Word>] {
        &self.outcomes
    }

    /// Whether every process finished its protocol.
    pub fn all_finished(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_some())
    }

    /// Step counts of the execution.
    pub fn steps(&self) -> &StepCounts {
        &self.steps
    }

    /// Recorded history (empty unless full recording was requested).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The memory after the execution (for space stats and assertions).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Whether the execution was stopped by the safety step cap.
    pub fn hit_step_cap(&self) -> bool {
        self.hit_cap
    }

    /// Process ids whose outcome equals `value`.
    pub fn processes_with_outcome(&self, value: Word) -> Vec<ProcessId> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(value))
            .map(|(i, _)| ProcessId(i))
            .collect()
    }
}

impl Execution {
    /// Default safety cap on total steps.
    pub const DEFAULT_STEP_CAP: u64 = 50_000_000;

    /// Build an execution of the given protocols (one per process) on
    /// `memory`. Process `i` runs `protocols[i]` with a private RNG derived
    /// from `seed` and `i`.
    pub fn new(memory: Memory, protocols: Vec<Box<dyn Protocol>>, seed: u64) -> Self {
        let n = protocols.len();
        let procs = protocols
            .into_iter()
            .enumerate()
            .map(|(i, root)| ProcessState {
                runtime: SubRuntime::new(root),
                rng: SplitMix64::split(seed, i as u64),
                notes: Notes::default(),
                liveness: Liveness::Live,
            })
            .collect();
        Execution {
            memory,
            procs,
            steps: StepCounts::new(n),
            history: History::new(RecordMode::Counts),
            step_cap: Self::DEFAULT_STEP_CAP,
            global_step: 0,
            seed,
            live: n,
            not_arrived: 0,
            crashed: 0,
            respawns: 0,
        }
    }

    /// Rewind this execution for a fresh trial: reset all registers (keeping
    /// allocations), zero the accounting, and install new root protocols.
    ///
    /// Together with [`SubRuntime::reset`] and [`Memory::reset`] this lets a
    /// trial loop reuse one `Execution` end to end — after the first trial
    /// the executor performs no heap allocation in steady state (the only
    /// remaining allocations are the protocol boxes the caller supplies).
    ///
    /// The register *layout* is kept: callers re-running an algorithm on the
    /// same structure must pass protocols built against the ranges already
    /// allocated in this memory.
    pub fn reset(&mut self, protocols: Vec<Box<dyn Protocol>>, seed: u64) {
        let n = protocols.len();
        self.procs.truncate(n);
        for (i, root) in protocols.into_iter().enumerate() {
            if i < self.procs.len() {
                let p = &mut self.procs[i];
                p.runtime.reset(root);
                p.rng = SplitMix64::split(seed, i as u64);
                p.notes = Notes::default();
                p.liveness = Liveness::Live;
            } else {
                self.procs.push(ProcessState {
                    runtime: SubRuntime::new(root),
                    rng: SplitMix64::split(seed, i as u64),
                    notes: Notes::default(),
                    liveness: Liveness::Live,
                });
            }
        }
        self.memory.reset();
        self.steps.reset(n);
        self.history.clear();
        self.global_step = 0;
        self.seed = seed;
        self.live = n;
        self.not_arrived = 0;
        self.crashed = 0;
        self.respawns = 0;
    }

    /// Enable full history recording.
    pub fn with_recording(mut self, mode: RecordMode) -> Self {
        self.history = History::new(mode);
        self
    }

    /// Override the safety cap on total steps.
    pub fn with_step_cap(mut self, cap: u64) -> Self {
        self.step_cap = cap;
        self
    }

    /// Number of processes.
    pub fn n_processes(&self) -> usize {
        self.procs.len()
    }

    /// Hold `pid` back from the execution until the adversary injects its
    /// arrival ([`Injection::Arrive`]). A held process takes no steps,
    /// draws no coins, and exposes no pending operation.
    ///
    /// # Panics
    ///
    /// Panics if the process already took a step (call this before
    /// running), already finished, or is not currently live.
    pub fn hold_arrival(&mut self, pid: ProcessId) {
        let p = &mut self.procs[pid.index()];
        assert!(
            p.liveness == Liveness::Live && p.finished().is_none() && p.pending().is_none(),
            "hold_arrival on a process that already started: {pid:?}"
        );
        assert_eq!(self.steps.of(pid), 0, "hold_arrival after steps: {pid:?}");
        p.liveness = Liveness::NotArrived;
        self.live -= 1;
        self.not_arrived += 1;
    }

    /// Run the execution under `adversary` until every process finished,
    /// the adversary stops scheduling (`None`), or the step cap is hit.
    pub fn run(mut self, adversary: &mut dyn Adversary) -> ExecutionResult {
        let outcome = self.run_in_place(adversary);
        ExecutionResult {
            outcomes: self.procs.iter().map(|p| p.finished()).collect(),
            steps: self.steps,
            history: self.history,
            memory: self.memory,
            hit_cap: outcome.hit_cap,
        }
    }

    /// Like [`Execution::run`], but borrows instead of consuming, so the
    /// execution can be [`Execution::reset`] and reused for the next trial
    /// without reallocating memory, step counters, or runtimes.
    ///
    /// Results are read back through the in-place accessors
    /// ([`Execution::outcome`], [`Execution::steps`], [`Execution::memory`],
    /// [`Execution::count_outcome`]).
    ///
    /// The scheduler loop does O(1) completion checking per step: a live-
    /// process counter replaces the per-step scan over all processes.
    pub fn run_in_place(&mut self, adversary: &mut dyn Adversary) -> RunOutcome {
        // Bring every live process to its first poised operation (local
        // steps and coin flips before the first shared-memory access are
        // free). Held-back processes advance when their arrival arrives.
        for i in 0..self.procs.len() {
            if self.procs[i].liveness == Liveness::Live {
                self.advance_process(i);
            }
        }
        let mut hit_cap = false;
        while self.live > 0 || self.not_arrived > 0 {
            if self.steps.total() >= self.step_cap {
                hit_cap = true;
                break;
            }
            let class = adversary.class();
            // Drain lifecycle injections before the scheduling decision.
            loop {
                let injection = {
                    let view = View::new(class, &self.procs, &self.steps);
                    adversary.inject(&view)
                };
                match injection {
                    Injection::None => break,
                    Injection::Arrive(pid) => self.arrive(pid),
                    Injection::Crash(pid) => self.crash(pid),
                    Injection::Respawn(pid, proto) => self.respawn(pid, proto),
                }
            }
            if self.live == 0 && self.not_arrived == 0 {
                break;
            }
            let chosen = {
                let view = View::new(class, &self.procs, &self.steps);
                adversary.next(&view)
            };
            let Some(pid) = chosen else { break };
            assert!(
                pid.index() < self.procs.len(),
                "adversary chose unknown {pid:?}"
            );
            if !self.procs[pid.index()].can_step() {
                // Slot wasted on a finished, crashed, or not-yet-arrived
                // process: no step taken.
                continue;
            }
            self.execute_step(pid);
        }
        debug_assert_eq!(
            self.live,
            self.procs.iter().filter(|p| p.can_step()).count(),
            "live counter out of sync with process states"
        );
        debug_assert_eq!(
            self.crashed,
            self.procs.iter().filter(|p| p.is_crashed()).count(),
            "crashed counter out of sync with process states"
        );
        RunOutcome {
            hit_cap,
            finished: self.finished_count(),
            processes: self.procs.len(),
        }
    }

    /// Inject the arrival of a held-back process: it becomes live and
    /// advances to its first poised operation.
    fn arrive(&mut self, pid: ProcessId) {
        let p = &mut self.procs[pid.index()];
        assert_eq!(
            p.liveness,
            Liveness::NotArrived,
            "arrival injected for a process that already arrived: {pid:?}"
        );
        p.liveness = Liveness::Live;
        self.not_arrived -= 1;
        self.live += 1;
        // May finish immediately (zero-step protocols); advance_process
        // keeps the live counter consistent.
        self.advance_process(pid.index());
    }

    /// Crash a process. Crashing a finished or already-crashed process is
    /// a no-op; crashing a held-back process cancels its arrival.
    fn crash(&mut self, pid: ProcessId) {
        let p = &mut self.procs[pid.index()];
        match p.liveness {
            Liveness::Crashed => {}
            Liveness::NotArrived => {
                p.liveness = Liveness::Crashed;
                self.not_arrived -= 1;
                self.crashed += 1;
            }
            Liveness::Live => {
                if p.finished().is_none() {
                    p.liveness = Liveness::Crashed;
                    self.live -= 1;
                    self.crashed += 1;
                }
            }
        }
    }

    /// Replace the slot's process with a fresh one running `proto`, with
    /// a fresh coin-flip stream. The predecessor's steps remain on the
    /// slot's counter (steps are accounted per slot).
    ///
    /// # Panics
    ///
    /// Panics if the slot's process never arrived (respawn models churn
    /// of a previously live slot, not a first arrival).
    fn respawn(&mut self, pid: ProcessId, proto: Box<dyn Protocol>) {
        let idx = pid.index();
        assert!(
            self.procs[idx].liveness != Liveness::NotArrived,
            "respawn of a process that never arrived: {pid:?}"
        );
        let was_running = self.procs[idx].can_step();
        if self.procs[idx].liveness == Liveness::Crashed {
            self.crashed -= 1;
        }
        self.respawns += 1;
        let stream = self.procs.len() as u64 + self.respawns;
        let p = &mut self.procs[idx];
        p.runtime.reset(proto);
        p.rng = SplitMix64::split(self.seed, stream);
        p.notes = Notes::default();
        p.liveness = Liveness::Live;
        if !was_running {
            // Crashed or finished predecessors were not counted live.
            self.live += 1;
        }
        self.advance_process(idx);
    }

    /// The result of process `pid`'s protocol so far, or `None` if it has
    /// not finished. In-place counterpart of [`ExecutionResult::outcome`].
    pub fn outcome(&self, pid: ProcessId) -> Option<Word> {
        self.procs[pid.index()].finished()
    }

    /// Whether every process finished its protocol.
    pub fn all_finished(&self) -> bool {
        self.live == 0 && self.not_arrived == 0 && self.crashed == 0
    }

    /// Number of processes whose protocol finished.
    pub fn finished_count(&self) -> usize {
        self.procs.len() - self.live - self.not_arrived - self.crashed
    }

    /// Number of crashed processes.
    pub fn crashed_count(&self) -> usize {
        self.crashed
    }

    /// Number of processes still held back from arriving.
    pub fn not_arrived_count(&self) -> usize {
        self.not_arrived
    }

    /// Number of finished processes whose outcome equals `value`
    /// (allocation-free counterpart of
    /// [`ExecutionResult::processes_with_outcome`]).
    pub fn count_outcome(&self, value: Word) -> usize {
        self.procs
            .iter()
            .filter(|p| p.finished() == Some(value))
            .count()
    }

    /// Step counts so far.
    pub fn steps(&self) -> &StepCounts {
        &self.steps
    }

    /// The shared memory (for space stats and assertions between trials).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Recorded history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    fn advance_process(&mut self, idx: usize) {
        let p = &mut self.procs[idx];
        let was_finished = p.runtime.finished().is_some();
        let mut ctx = Ctx {
            pid: ProcessId(idx),
            rng: &mut p.rng,
            notes: &mut p.notes,
        };
        let poll = p.runtime.advance(&mut ctx);
        if !was_finished && matches!(poll, SubPoll::Finished(_)) {
            self.live -= 1;
        }
    }

    fn execute_step(&mut self, pid: ProcessId) {
        let idx = pid.index();
        let op = self.procs[idx]
            .pending()
            .expect("scheduled process is not poised");
        let (input, event) = match op {
            MemOp::Read(reg) => {
                let cell = self.memory.read(reg);
                (
                    Resume::Read(cell.value),
                    Event {
                        step: self.global_step,
                        pid,
                        kind: OpKind::Read,
                        reg,
                        value: cell.value,
                        observed_writer: cell.writer,
                    },
                )
            }
            MemOp::Write(reg, value) => {
                self.memory.write(reg, value, pid);
                (
                    Resume::Wrote,
                    Event {
                        step: self.global_step,
                        pid,
                        kind: OpKind::Write,
                        reg,
                        value,
                        observed_writer: None,
                    },
                )
            }
        };
        self.steps.bump(pid);
        self.history.push(event);
        self.global_step += 1;
        self.procs[idx].runtime.feed(input);
        self.advance_process(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RoundRobin;
    use crate::memory::Memory;
    use crate::protocol::{boxed, Const};
    use crate::word::RegId;

    /// Writes its pid, then reads the register, returning what it saw.
    struct WriteRead {
        reg: RegId,
        state: u8,
    }

    impl Protocol for WriteRead {
        fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
            match self.state {
                0 => {
                    self.state = 1;
                    Poll::Op(MemOp::Write(self.reg, ctx.pid.index() as Word + 1))
                }
                1 => {
                    self.state = 2;
                    Poll::Op(MemOp::Read(self.reg))
                }
                _ => Poll::Done(input.read_value()),
            }
        }
    }

    /// Calls a child `Const` and returns child value + 10.
    struct Caller;
    impl Protocol for Caller {
        fn resume(&mut self, input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
            match input {
                Resume::Start => Poll::Call(boxed(Const(5))),
                Resume::Child(v) => Poll::Done(v + 10),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn single_process_write_read() {
        let mut mem = Memory::new();
        let reg = mem.alloc(1, "t").start();
        let ex = Execution::new(mem, vec![Box::new(WriteRead { reg, state: 0 })], 0);
        let res = ex.run(&mut RoundRobin::new(1));
        assert!(res.all_finished());
        assert_eq!(res.outcome(ProcessId(0)), Some(1));
        assert_eq!(res.steps().of(ProcessId(0)), 2);
    }

    #[test]
    fn two_processes_round_robin_interleaving() {
        let mut mem = Memory::new();
        let reg = mem.alloc(1, "t").start();
        let protos: Vec<Box<dyn Protocol>> = (0..2)
            .map(|_| Box::new(WriteRead { reg, state: 0 }) as Box<dyn Protocol>)
            .collect();
        let res = Execution::new(mem, protos, 0).run(&mut RoundRobin::new(2));
        // RR order: P0 writes 1, P1 writes 2, P0 reads 2, P1 reads 2.
        assert_eq!(res.outcome(ProcessId(0)), Some(2));
        assert_eq!(res.outcome(ProcessId(1)), Some(2));
        assert_eq!(res.steps().total(), 4);
        assert_eq!(res.steps().contention(), 2);
    }

    #[test]
    fn call_stack_composition() {
        let mem = Memory::new();
        let res = Execution::new(mem, vec![Box::new(Caller)], 7).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(15));
        assert_eq!(res.steps().total(), 0, "no shared-memory steps taken");
    }

    #[test]
    fn schedule_truncation_leaves_unfinished() {
        use crate::adversary::ObliviousAdversary;
        use crate::schedule::Schedule;
        let mut mem = Memory::new();
        let reg = mem.alloc(1, "t").start();
        let protos: Vec<Box<dyn Protocol>> = (0..2)
            .map(|_| Box::new(WriteRead { reg, state: 0 }) as Box<dyn Protocol>)
            .collect();
        // Only P0 ever runs: P1 "crashes" before its first step.
        let mut adv = ObliviousAdversary::new(Schedule::from_pids([0, 0, 0]));
        let res = Execution::new(mem, protos, 0).run(&mut adv);
        assert_eq!(res.outcome(ProcessId(0)), Some(1));
        assert_eq!(res.outcome(ProcessId(1)), None);
        assert!(!res.all_finished());
    }

    #[test]
    fn step_cap_stops_runaway() {
        /// Reads forever.
        struct Spin {
            reg: RegId,
        }
        impl Protocol for Spin {
            fn resume(&mut self, _input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
                Poll::Op(MemOp::Read(self.reg))
            }
        }
        let mut mem = Memory::new();
        let reg = mem.alloc(1, "spin").start();
        let res = Execution::new(mem, vec![Box::new(Spin { reg })], 0)
            .with_step_cap(100)
            .run(&mut RoundRobin::new(1));
        assert!(res.hit_step_cap());
        assert_eq!(res.steps().total(), 100);
        assert!(!res.all_finished());
    }

    #[test]
    fn history_records_visibility() {
        let mut mem = Memory::new();
        let reg = mem.alloc(1, "t").start();
        let protos: Vec<Box<dyn Protocol>> = (0..2)
            .map(|_| Box::new(WriteRead { reg, state: 0 }) as Box<dyn Protocol>)
            .collect();
        let res = Execution::new(mem, protos, 0)
            .with_recording(RecordMode::Full)
            .run(&mut RoundRobin::new(2));
        // P0's read observes P1's write (RR order) — so P0 sees P1.
        let pairs = res.history().sees_pairs();
        assert!(pairs.contains(&(ProcessId(0), ProcessId(1))));
        assert_eq!(res.history().events().len(), 4);
    }

    #[test]
    fn processes_with_outcome_filters() {
        let mem = Memory::new();
        let protos: Vec<Box<dyn Protocol>> =
            vec![boxed(Const(1)), boxed(Const(0)), boxed(Const(1))];
        let res = Execution::new(mem, protos, 0).run(&mut RoundRobin::new(3));
        assert_eq!(
            res.processes_with_outcome(1),
            vec![ProcessId(0), ProcessId(2)]
        );
    }

    #[test]
    fn subruntime_feed_mismatch_panics() {
        let mut rt = SubRuntime::new(boxed(Const(0)));
        let mut rng = SplitMix64::new(0);
        let mut notes = Notes::default();
        let mut ctx = Ctx {
            pid: ProcessId(0),
            rng: &mut rng,
            notes: &mut notes,
        };
        assert_eq!(rt.advance(&mut ctx), SubPoll::Finished(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.feed(Resume::Wrote);
        }));
        assert!(result.is_err());
    }
}
