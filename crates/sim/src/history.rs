//! Execution history recording and the paper's "sees" relation.
//!
//! Section 5's lower-bound argument is phrased in terms of *visibility*:
//! process `p` **sees** process `q` when `p` reads a register whose current
//! value was written by `q`. The executor can record every step so tests and
//! the covering-argument experiments can reconstruct this relation, compute
//! the equivalence classes `≡_E`, and check covering invariants.

use crate::op::OpKind;
use crate::word::{ProcessId, RegId, Word};

/// One executed shared-memory step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global step index (0-based, total order of the execution).
    pub step: u64,
    /// The process that took the step.
    pub pid: ProcessId,
    /// Read or write.
    pub kind: OpKind,
    /// The register accessed.
    pub reg: RegId,
    /// For writes: the value written. For reads: the value observed.
    pub value: Word,
    /// For reads: the process visible on the register (its last writer), if
    /// any. For writes: `None`.
    pub observed_writer: Option<ProcessId>,
}

/// How much history to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMode {
    /// Keep nothing (counters only) — the default; large sweeps use this.
    #[default]
    Counts,
    /// Keep every event.
    Full,
}

/// The recorded history of an execution.
#[derive(Debug, Clone, Default)]
pub struct History {
    mode: RecordMode,
    events: Vec<Event>,
}

impl History {
    /// New history with the given recording mode.
    pub fn new(mode: RecordMode) -> Self {
        History {
            mode,
            events: Vec::new(),
        }
    }

    /// Drop all recorded events, keeping the mode and the allocation.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Record one event (no-op in [`RecordMode::Counts`]).
    pub fn push(&mut self, event: Event) {
        if self.mode == RecordMode::Full {
            self.events.push(event);
        }
    }

    /// All recorded events, in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Whether full events were recorded.
    pub fn is_full(&self) -> bool {
        self.mode == RecordMode::Full
    }

    /// The pairs `(p, q)` such that `p` saw `q` during the execution
    /// (`p` read a register on which `q` was visible).
    pub fn sees_pairs(&self) -> Vec<(ProcessId, ProcessId)> {
        self.events
            .iter()
            .filter_map(|e| match (e.kind, e.observed_writer) {
                (OpKind::Read, Some(q)) => Some((e.pid, q)),
                _ => None,
            })
            .collect()
    }

    /// The equivalence classes of the paper's `≡_E` relation over the given
    /// process universe: the transitive closure of "p saw q or q saw p",
    /// with every process related to itself.
    ///
    /// Returned as a vector of sorted classes, sorted by smallest member.
    pub fn equivalence_classes(&self, n_processes: usize) -> Vec<Vec<ProcessId>> {
        let mut dsu = DisjointSet::new(n_processes);
        for (p, q) in self.sees_pairs() {
            dsu.union(p.index(), q.index());
        }
        dsu.classes()
            .into_iter()
            .map(|class| class.into_iter().map(ProcessId).collect())
            .collect()
    }

    /// Number of steps taken by `pid` according to the recorded events.
    pub fn steps_of(&self, pid: ProcessId) -> u64 {
        self.events.iter().filter(|e| e.pid == pid).count() as u64
    }
}

/// Minimal union-find used for `≡_E` classes.
#[derive(Debug, Clone)]
struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb.max(ra)] = ra.min(rb);
        }
    }

    fn classes(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        by_root.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_event(step: u64, p: usize, q: Option<usize>) -> Event {
        Event {
            step,
            pid: ProcessId(p),
            kind: OpKind::Read,
            reg: RegId(0),
            value: 0,
            observed_writer: q.map(ProcessId),
        }
    }

    #[test]
    fn counts_mode_discards() {
        let mut h = History::new(RecordMode::Counts);
        h.push(read_event(0, 0, None));
        assert!(h.events().is_empty());
        assert!(!h.is_full());
    }

    #[test]
    fn full_mode_records() {
        let mut h = History::new(RecordMode::Full);
        h.push(read_event(0, 0, Some(1)));
        h.push(read_event(1, 0, None));
        assert_eq!(h.events().len(), 2);
        assert_eq!(h.steps_of(ProcessId(0)), 2);
        assert_eq!(h.steps_of(ProcessId(1)), 0);
    }

    #[test]
    fn sees_pairs_only_from_reads_with_writers() {
        let mut h = History::new(RecordMode::Full);
        h.push(read_event(0, 0, Some(1)));
        h.push(read_event(1, 2, None));
        h.push(Event {
            step: 2,
            pid: ProcessId(1),
            kind: OpKind::Write,
            reg: RegId(0),
            value: 3,
            observed_writer: None,
        });
        assert_eq!(h.sees_pairs(), vec![(ProcessId(0), ProcessId(1))]);
    }

    #[test]
    fn equivalence_classes_transitive() {
        let mut h = History::new(RecordMode::Full);
        // 0 sees 1, 2 sees 1  =>  {0,1,2} one class; 3 alone.
        h.push(read_event(0, 0, Some(1)));
        h.push(read_event(1, 2, Some(1)));
        let classes = h.equivalence_classes(4);
        assert_eq!(
            classes,
            vec![
                vec![ProcessId(0), ProcessId(1), ProcessId(2)],
                vec![ProcessId(3)],
            ]
        );
    }

    #[test]
    fn singleton_classes_without_events() {
        let h = History::new(RecordMode::Full);
        assert_eq!(h.equivalence_classes(3).len(), 3);
    }
}
