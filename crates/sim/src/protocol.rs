//! Protocols as resumable state machines.
//!
//! An algorithm for one process is a [`Protocol`]: a state machine that the
//! per-process runtime drives by calling [`Protocol::resume`]. Each call
//! either requests one shared-memory operation ([`Poll::Op`]), calls a child
//! protocol ([`Poll::Call`]) — which is how the paper's object compositions
//! (group elections inside leader-election ladders inside combiners) are
//! expressed — or terminates with a result ([`Poll::Done`]).
//!
//! Local computation and coin flips happen *inside* `resume`, between
//! shared-memory steps. After `resume` returns `Poll::Op`, the process is
//! *poised* on that committed operation; the adversary observes a filtered
//! view of it (see [`crate::adversary`]) before deciding who runs. This is
//! exactly the visibility structure the paper's adversary definitions
//! require: a location-oblivious adversary sees the pending operation's type
//! and write value but not its register, an R/W-oblivious adversary sees the
//! register but not the type.

use crate::op::MemOp;
use crate::rng::Randomness;
use crate::word::{ProcessId, Word};

/// Return conventions used by protocols, as `Word` values.
///
/// Leader election: `WIN`/`LOSE`. Splitters: `SPLIT_STOP`/`SPLIT_LEFT`/
/// `SPLIT_RIGHT`. TAS: `0` (won, old bit was 0) / `1`.
pub mod ret {
    use crate::word::Word;

    /// The process won (elect() returned true).
    pub const WIN: Word = 1;
    /// The process lost (elect() returned false).
    pub const LOSE: Word = 0;
    /// split() returned S (the process won the splitter).
    pub const SPLIT_STOP: Word = 0;
    /// split() returned L.
    pub const SPLIT_LEFT: Word = 1;
    /// split() returned R.
    pub const SPLIT_RIGHT: Word = 2;
}

/// What a protocol does next.
pub enum Poll {
    /// Perform one shared-memory operation; its result arrives in the next
    /// [`Resume`].
    Op(MemOp),
    /// Run a child protocol to completion; its result arrives as
    /// [`Resume::Child`].
    Call(Box<dyn Protocol>),
    /// The protocol finished with this result.
    Done(Word),
}

impl std::fmt::Debug for Poll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Poll::Op(op) => f.debug_tuple("Op").field(op).finish(),
            Poll::Call(p) => f.debug_tuple("Call").field(&p.name()).finish(),
            Poll::Done(v) => f.debug_tuple("Done").field(v).finish(),
        }
    }
}

/// The event a protocol is resumed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// First activation of the protocol.
    Start,
    /// The read requested by the previous `Poll::Op` returned this value.
    Read(Word),
    /// The write requested by the previous `Poll::Op` completed.
    Wrote,
    /// The child protocol called by the previous `Poll::Call` finished with
    /// this value.
    Child(Word),
}

impl Resume {
    /// Extract the read value.
    ///
    /// # Panics
    ///
    /// Panics if this is not [`Resume::Read`] — protocols use this when
    /// their state machine knows a read must be pending.
    pub fn read_value(self) -> Word {
        match self {
            Resume::Read(v) => v,
            other => panic!("expected Resume::Read, got {other:?}"),
        }
    }

    /// Extract the child result.
    ///
    /// # Panics
    ///
    /// Panics if this is not [`Resume::Child`].
    pub fn child_value(self) -> Word {
        match self {
            Resume::Child(v) => v,
            other => panic!("expected Resume::Child, got {other:?}"),
        }
    }
}

/// Per-process scratch flags shared between composed protocols.
///
/// Section 4's combiner needs to know whether the RatRace side has already
/// won a splitter (Rule 3); the RatRace protocol raises
/// [`Notes::won_splitter`] and the combiner reads it. Keeping this in the
/// process context avoids plumbing side channels through every layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Notes {
    /// Set by RatRace-style protocols when the process wins any
    /// (deterministic or randomized) splitter.
    pub won_splitter: bool,
}

/// Execution context handed to [`Protocol::resume`]: the process identity,
/// its private coin-flip source, and scratch notes.
pub struct Ctx<'a> {
    /// The process running this protocol.
    pub pid: ProcessId,
    /// Private random source (local coin flips). A [`crate::rng::SplitMix64`]
    /// in normal executions, a scripted source under the explorer.
    pub rng: &'a mut dyn Randomness,
    /// Cross-protocol scratch flags for this process.
    pub notes: &'a mut Notes,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("notes", &self.notes)
            .finish()
    }
}

/// A resumable, per-process state machine.
///
/// Implementations must be deterministic given the `Resume` inputs and the
/// coin flips drawn from `ctx.rng`; all inter-process communication goes
/// through `Poll::Op` operations. This is what makes executions replayable
/// and exhaustively explorable.
pub trait Protocol: Send {
    /// Advance the state machine.
    ///
    /// The first call passes [`Resume::Start`]; afterwards the runtime
    /// passes the event corresponding to the previous [`Poll`].
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll;

    /// Human-readable name for debugging and history recording.
    fn name(&self) -> &'static str {
        "protocol"
    }
}

/// A protocol that immediately finishes with a constant value.
///
/// Used for the "dummy" group elections of Theorem 2.3 (everyone gets
/// elected, zero registers, zero steps) and as a test fixture.
#[derive(Debug, Clone, Copy)]
pub struct Const(pub Word);

impl Protocol for Const {
    fn resume(&mut self, _input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
        Poll::Done(self.0)
    }

    fn name(&self) -> &'static str {
        "const"
    }
}

/// Boxed protocol constructor helpers.
pub fn boxed<P: Protocol + 'static>(p: P) -> Box<dyn Protocol> {
    Box::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::RegId;

    #[test]
    fn resume_accessors() {
        assert_eq!(Resume::Read(5).read_value(), 5);
        assert_eq!(Resume::Child(7).child_value(), 7);
    }

    #[test]
    #[should_panic(expected = "expected Resume::Read")]
    fn read_value_panics_on_wrong_variant() {
        Resume::Wrote.read_value();
    }

    #[test]
    #[should_panic(expected = "expected Resume::Child")]
    fn child_value_panics_on_wrong_variant() {
        Resume::Start.child_value();
    }

    #[test]
    fn const_protocol_finishes_immediately() {
        let mut rng = crate::rng::SplitMix64::new(0);
        let mut notes = Notes::default();
        let mut ctx = Ctx {
            pid: ProcessId(0),
            rng: &mut rng,
            notes: &mut notes,
        };
        let mut c = Const(9);
        match c.resume(Resume::Start, &mut ctx) {
            Poll::Done(9) => {}
            other => panic!("unexpected poll {other:?}"),
        }
    }

    #[test]
    fn poll_debug_is_informative() {
        assert_eq!(
            format!("{:?}", Poll::Op(MemOp::Read(RegId(1)))),
            "Op(Read(r1))"
        );
        assert!(format!("{:?}", Poll::Call(boxed(Const(0)))).contains("const"));
        assert_eq!(format!("{:?}", Poll::Done(3)), "Done(3)");
    }
}
