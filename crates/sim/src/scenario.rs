//! Composable workload scenarios: arrivals × faults × scheduling strategy.
//!
//! The paper's results are parameterized by adversary strength and
//! contention pattern. A [`Scenario`] makes those knobs first-class by
//! composing three orthogonal axes behind one builder API:
//!
//! * **arrivals** ([`ArrivalSpec`]) — when each process joins the
//!   execution: all at once, staggered, in batches, or at random late
//!   slots;
//! * **faults** ([`FaultSpec`]) — crash-at-slot, crash-after-k-ops, or
//!   churn (crashed slots respawn as fresh processes);
//! * **strategy** ([`StrategySpec`]) — which [`Strategy`] picks the next
//!   process among the live ones: the oblivious generators, the adaptive
//!   and location-oblivious attacks, or the scenario-native strategies
//!   ([`ContentionMax`], [`LaggardFirst`], [`WriteChaser`]).
//!
//! [`Scenario::begin`] instantiates the composition for one execution: it
//! holds back late arrivals on the [`Execution`] and returns a
//! [`ScenarioAdversary`] that emits the lifecycle
//! [`Injection`]s and delegates scheduling
//! decisions to the strategy. Class enforcement is preserved by
//! construction: the composed adversary reports the strategy's
//! [`AdversaryClass`], so the executor's [`View`] filters pending
//! operations exactly as it would for the bare strategy.
//!
//! ## Time base
//!
//! Arrival and crash-at-slot events are keyed to *scheduling slots* (the
//! number of decisions the adversary has made), not executed steps: slots
//! advance even when a decision lands on a dead process, so a pending
//! arrival can never deadlock an execution in which every live process
//! already finished. Crash-after-ops and churn events are keyed to the
//! victim's own executed step count.
//!
//! ## Example
//!
//! ```
//! use rtas_sim::prelude::*;
//! use rtas_sim::scenario::{ArrivalSpec, FaultSpec, Scenario, StrategySpec};
//!
//! struct WriteOnce(RegId);
//! impl Protocol for WriteOnce {
//!     fn resume(&mut self, input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
//!         match input {
//!             Resume::Start => Poll::Op(MemOp::Write(self.0, 1)),
//!             _ => Poll::Done(0),
//!         }
//!     }
//! }
//!
//! let scenario = Scenario::builder()
//!     .arrivals(ArrivalSpec::Staggered { gap: 2 })
//!     .faults(FaultSpec::CrashAtSlot { victims: 1, slot: 0 })
//!     .strategy(StrategySpec::round_robin())
//!     .build();
//!
//! let mut mem = Memory::new();
//! let regs = mem.alloc(4, "demo");
//! let protos = (0..4)
//!     .map(|i| Box::new(WriteOnce(regs.get(i))) as Box<dyn Protocol>)
//!     .collect();
//! let mut exec = Execution::new(mem, protos, 7);
//! let mut adv = scenario.begin(&mut exec, 7);
//! let out = exec.run_in_place(&mut adv);
//! assert_eq!(out.finished, 3); // one victim crashed
//! ```

use std::fmt;
use std::sync::Arc;

use crate::adversary::{
    Adversary, AdversaryClass, Injection, ObliviousAdversary, RandomSchedule, RoundRobin, Strategy,
    View,
};
use crate::executor::Execution;
use crate::op::OpKind;
use crate::protocol::Protocol;
use crate::rng::SplitMix64;
use crate::schedule::Schedule;
use crate::word::ProcessId;

/// When each process joins the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalSpec {
    /// Every process is live from slot 0 (the classical setting).
    Simultaneous,
    /// Process `i` arrives at slot `i * gap`.
    Staggered {
        /// Slots between consecutive arrivals.
        gap: u64,
    },
    /// Processes arrive in batches of `size`: batch `b` (processes
    /// `b*size .. (b+1)*size`) arrives at slot `b * gap`.
    Batched {
        /// Processes per batch.
        size: usize,
        /// Slots between consecutive batches.
        gap: u64,
    },
    /// Each process independently arrives at a uniformly random slot in
    /// `0..=max_delay`, drawn from the scenario seed.
    RandomLate {
        /// Largest possible arrival slot.
        max_delay: u64,
    },
}

impl ArrivalSpec {
    /// Short stable name for reports and CLI lookup.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalSpec::Simultaneous => "simultaneous",
            ArrivalSpec::Staggered { .. } => "staggered",
            ArrivalSpec::Batched { .. } => "batched",
            ArrivalSpec::RandomLate { .. } => "random-late",
        }
    }

    /// The delayed arrivals `(slot, pid)` for `n` processes, sorted by
    /// slot then pid. Processes arriving at slot 0 are omitted (they are
    /// simply live from the start).
    fn delayed(&self, n: usize, rng: &mut SplitMix64) -> Vec<(u64, ProcessId)> {
        let mut out: Vec<(u64, ProcessId)> = (0..n)
            .map(|i| {
                let slot = match *self {
                    ArrivalSpec::Simultaneous => 0,
                    ArrivalSpec::Staggered { gap } => i as u64 * gap,
                    ArrivalSpec::Batched { size, gap } => (i / size.max(1)) as u64 * gap,
                    ArrivalSpec::RandomLate { max_delay } => rng.next_below(max_delay + 1),
                };
                (slot, ProcessId(i))
            })
            .filter(|&(slot, _)| slot > 0)
            .collect();
        out.sort();
        out
    }
}

/// Which processes crash, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// No process ever crashes.
    None,
    /// The first `victims` processes crash at scheduling slot `slot`
    /// (cancelling their arrival if they have not arrived yet).
    CrashAtSlot {
        /// Number of victims (processes `0..victims`).
        victims: usize,
        /// The slot at which they crash.
        slot: u64,
    },
    /// Each of the first `victims` processes crashes as soon as it has
    /// taken `ops` steps.
    CrashAfterOps {
        /// Number of victims (processes `0..victims`).
        victims: usize,
        /// Steps a victim takes before crashing.
        ops: u64,
    },
    /// Like [`FaultSpec::CrashAfterOps`], but each crashed slot respawns
    /// once as a fresh process (churn). Requires a respawn factory
    /// ([`ScenarioAdversary::with_respawn`]); without one the crash is
    /// permanent.
    Churn {
        /// Number of victims (processes `0..victims`).
        victims: usize,
        /// Steps a victim takes before crashing.
        ops: u64,
    },
}

impl FaultSpec {
    /// Short stable name for reports and CLI lookup.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSpec::None => "none",
            FaultSpec::CrashAtSlot { .. } => "crash-slot",
            FaultSpec::CrashAfterOps { .. } => "crash-ops",
            FaultSpec::Churn { .. } => "churn",
        }
    }
}

/// A named, seedable factory of [`Strategy`] instances.
///
/// Keeping the axis declarative (name + factory) lets a [`Scenario`] be
/// `Clone + Send + Sync` and instantiated per trial with per-trial seeds,
/// while downstream crates plug in their own strategies (the Section 4
/// attacks live in `rtas-algorithms`) via [`StrategySpec::new`].
#[derive(Clone)]
pub struct StrategySpec {
    name: &'static str,
    make: Arc<dyn Fn(usize, u64) -> Box<dyn Strategy> + Send + Sync>,
}

impl fmt::Debug for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategySpec")
            .field("name", &self.name)
            .finish()
    }
}

impl StrategySpec {
    /// A spec from a name and a `(n, seed) -> Strategy` factory.
    pub fn new<F>(name: &'static str, make: F) -> Self
    where
        F: Fn(usize, u64) -> Box<dyn Strategy> + Send + Sync + 'static,
    {
        StrategySpec {
            name,
            make: Arc::new(make),
        }
    }

    /// The spec's stable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Instantiate the strategy for an `n`-process execution.
    pub fn build(&self, n: usize, seed: u64) -> Box<dyn Strategy> {
        (self.make)(n, seed)
    }

    /// Fair round-robin over live processes ([`RoundRobin`]).
    pub fn round_robin() -> Self {
        StrategySpec::new("round-robin", |n, _| Box::new(RoundRobin::new(n)))
    }

    /// Fresh uniformly random choice among live processes each slot
    /// ([`RandomSchedule`]). The seed is used verbatim, so a scenario with
    /// this strategy and no arrival/fault axes reproduces
    /// `RandomSchedule::new(seed)` bit for bit.
    pub fn random() -> Self {
        StrategySpec::new("random", |_, seed| Box::new(RandomSchedule::new(seed)))
    }

    /// A fixed uniformly random schedule of `slots_per_proc * n` slots,
    /// then fair round-robin completion ([`ObliviousAdversary`]).
    pub fn oblivious_uniform(slots_per_proc: usize) -> Self {
        StrategySpec::new("oblivious-uniform", move |n, seed| {
            let mut rng = SplitMix64::new(seed);
            let schedule = Schedule::uniform_random(n, slots_per_proc * n, &mut rng);
            Box::new(ObliviousAdversary::new(schedule).then_fair())
        })
    }

    /// A fixed sequential-arrivals schedule (`steps_each` consecutive
    /// slots per process, random order), then fair round-robin completion.
    pub fn oblivious_sequential(steps_each: usize) -> Self {
        StrategySpec::new("oblivious-sequential", move |n, seed| {
            let mut rng = SplitMix64::new(seed);
            let schedule = Schedule::sequential(n, steps_each, &mut rng);
            Box::new(ObliviousAdversary::new(schedule).then_fair())
        })
    }

    /// The contention-maximizing adaptive strategy ([`ContentionMax`]).
    pub fn contention_max() -> Self {
        StrategySpec::new("contention-max", |_, _| Box::<ContentionMax>::default())
    }

    /// The laggard-favoring strategy ([`LaggardFirst`]).
    pub fn laggard_first() -> Self {
        StrategySpec::new("laggard-first", |_, _| Box::new(LaggardFirst))
    }

    /// The write-chasing location-oblivious strategy ([`WriteChaser`]).
    pub fn write_chaser() -> Self {
        StrategySpec::new("write-chaser", |_, _| Box::new(WriteChaser))
    }
}

/// Contention-maximizing **adaptive** strategy: schedules a process
/// poised on the register that the most processes are currently poised
/// on, driving every access into the same hot spot. Ties break toward
/// the smallest register, then the smallest pid.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContentionMax;

impl Strategy for ContentionMax {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Adaptive
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        // (poised-on-same-register count, register, pid) — maximize the
        // count, then minimize register and pid. O(a²), allocation-free.
        let mut best: Option<(usize, u64, ProcessId)> = None;
        for i in 0..view.n() {
            let pid = ProcessId(i);
            let Some(reg) = view.pending(pid).and_then(|p| p.reg) else {
                continue;
            };
            let crowd = (0..view.n())
                .filter(|&j| view.pending(ProcessId(j)).and_then(|p| p.reg) == Some(reg))
                .count();
            let better = match best {
                None => true,
                Some((c, r, _)) => crowd > c || (crowd == c && reg.0 < r),
            };
            if better {
                best = Some((crowd, reg.0, pid));
            }
        }
        best.map(|(_, _, pid)| pid).or_else(|| view.nth_active(0))
    }
}

/// Laggard-favoring strategy: always schedules the live process with the
/// fewest executed steps (smallest pid on ties), keeping the whole cohort
/// in lockstep — the maximum-interference regime for splitter-based
/// algorithms. Uses only past step counts, so it is classed
/// [`AdversaryClass::RwOblivious`] (the weakest class that sees past
/// events).
#[derive(Debug, Clone, Copy, Default)]
pub struct LaggardFirst;

impl Strategy for LaggardFirst {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::RwOblivious
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        let mut best: Option<(u64, ProcessId)> = None;
        for i in 0..view.n() {
            let pid = ProcessId(i);
            if !view.is_active(pid) {
                continue;
            }
            let steps = view.steps_of(pid);
            if best.is_none_or(|(s, _)| steps < s) {
                best = Some((steps, pid));
            }
        }
        best.map(|(_, pid)| pid)
    }
}

/// Write-chasing **location-oblivious** strategy: always schedules a
/// pending write if one exists (the laggard writer first), releasing
/// reads only when no write is poised — so every read observes the most
/// written-to state possible without the adversary ever seeing register
/// names.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteChaser;

impl Strategy for WriteChaser {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::LocationOblivious
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        let mut best_write: Option<(u64, ProcessId)> = None;
        let mut best_read: Option<(u64, ProcessId)> = None;
        for i in 0..view.n() {
            let pid = ProcessId(i);
            let Some(p) = view.pending(pid) else { continue };
            let steps = view.steps_of(pid);
            let slot = match p.kind {
                Some(OpKind::Write) => &mut best_write,
                _ => &mut best_read,
            };
            if slot.is_none_or(|(s, _)| steps < s) {
                *slot = Some((steps, pid));
            }
        }
        best_write.or(best_read).map(|(_, pid)| pid)
    }
}

/// A composed workload: arrivals × faults × strategy, plus a name.
///
/// Scenarios are cheap to clone and `Send + Sync`, so one scenario value
/// parameterizes a whole Monte Carlo sweep; [`Scenario::begin`] (or
/// [`Scenario::adversary`]) instantiates it per trial with a per-trial
/// seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    arrivals: ArrivalSpec,
    faults: FaultSpec,
    strategy: StrategySpec,
}

impl Scenario {
    /// Start building a scenario (defaults: simultaneous arrivals, no
    /// faults, random strategy).
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            name: None,
            arrivals: ArrivalSpec::Simultaneous,
            faults: FaultSpec::None,
            strategy: StrategySpec::random(),
        }
    }

    /// The scenario's name (`arrivals+faults+strategy` unless overridden).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arrival axis.
    pub fn arrivals(&self) -> ArrivalSpec {
        self.arrivals
    }

    /// The fault axis.
    pub fn faults(&self) -> FaultSpec {
        self.faults
    }

    /// The strategy axis.
    pub fn strategy(&self) -> &StrategySpec {
        &self.strategy
    }

    /// Instantiate the adversary for an `n`-process execution.
    ///
    /// The strategy receives `seed` verbatim (so axis-free scenarios
    /// reproduce the bare strategy bit for bit); arrival randomness draws
    /// from an independent substream of `seed`.
    ///
    /// If the scenario delays any arrivals, the corresponding processes
    /// must be held back on the execution — use [`Scenario::begin`],
    /// which does both.
    pub fn adversary(&self, n: usize, seed: u64) -> ScenarioAdversary {
        let mut arrival_rng = SplitMix64::split(seed, 0xa117_u64);
        let arrivals = self.arrivals.delayed(n, &mut arrival_rng);
        let (slot_crashes, op_crashes, churn) = match self.faults {
            FaultSpec::None => (Vec::new(), Vec::new(), false),
            FaultSpec::CrashAtSlot { victims, slot } => (
                (0..victims.min(n)).map(|i| (slot, ProcessId(i))).collect(),
                Vec::new(),
                false,
            ),
            FaultSpec::CrashAfterOps { victims, ops } => (
                Vec::new(),
                (0..victims.min(n))
                    .map(|i| OpCrash {
                        pid: ProcessId(i),
                        ops,
                        fired: false,
                    })
                    .collect(),
                false,
            ),
            FaultSpec::Churn { victims, ops } => (
                Vec::new(),
                (0..victims.min(n))
                    .map(|i| OpCrash {
                        pid: ProcessId(i),
                        ops,
                        fired: false,
                    })
                    .collect(),
                true,
            ),
        };
        let strategy = self.strategy.build(n, seed);
        ScenarioAdversary {
            class: strategy.class(),
            strategy,
            clock: 0,
            arrivals,
            arr_cursor: 0,
            slot_crashes,
            slot_cursor: 0,
            op_crashes,
            churn,
            respawn: None,
        }
    }

    /// Instantiate the adversary *and* hold back its late arrivals on
    /// `exec`. This is the one call that wires a scenario to an
    /// execution; follow with [`ScenarioAdversary::with_respawn`] if the
    /// fault axis is churn.
    pub fn begin(&self, exec: &mut Execution, seed: u64) -> ScenarioAdversary {
        let adv = self.adversary(exec.n_processes(), seed);
        for &(_, pid) in &adv.arrivals {
            exec.hold_arrival(pid);
        }
        adv
    }
}

/// Builder for [`Scenario`] — see [`Scenario::builder`].
#[derive(Debug)]
pub struct ScenarioBuilder {
    name: Option<String>,
    arrivals: ArrivalSpec,
    faults: FaultSpec,
    strategy: StrategySpec,
}

impl ScenarioBuilder {
    /// Set the arrival axis.
    pub fn arrivals(mut self, arrivals: ArrivalSpec) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Set the fault axis.
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Set the strategy axis.
    pub fn strategy(mut self, strategy: StrategySpec) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the derived `arrivals+faults+strategy` name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Finish the scenario.
    pub fn build(self) -> Scenario {
        let name = self.name.unwrap_or_else(|| {
            format!(
                "{}+{}+{}",
                self.arrivals.label(),
                self.faults.label(),
                self.strategy.name()
            )
        });
        Scenario {
            name,
            arrivals: self.arrivals,
            faults: self.faults,
            strategy: self.strategy,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpCrash {
    pid: ProcessId,
    ops: u64,
    fired: bool,
}

/// One instantiation of a [`Scenario`]: a full [`Adversary`] that injects
/// the scenario's arrivals and faults and delegates scheduling decisions
/// to the strategy.
pub struct ScenarioAdversary {
    class: AdversaryClass,
    strategy: Box<dyn Strategy>,
    /// Scheduling slots elapsed (one per `next` call).
    clock: u64,
    arrivals: Vec<(u64, ProcessId)>,
    arr_cursor: usize,
    slot_crashes: Vec<(u64, ProcessId)>,
    slot_cursor: usize,
    op_crashes: Vec<OpCrash>,
    churn: bool,
    #[allow(clippy::type_complexity)]
    respawn: Option<Box<dyn FnMut(ProcessId) -> Box<dyn Protocol>>>,
}

impl fmt::Debug for ScenarioAdversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioAdversary")
            .field("class", &self.class)
            .field("clock", &self.clock)
            .field("pending_arrivals", &(self.arrivals.len() - self.arr_cursor))
            .finish()
    }
}

impl ScenarioAdversary {
    /// Install the factory that builds replacement protocols for churned
    /// slots. Without one, churn crashes are permanent.
    pub fn with_respawn<F>(mut self, factory: F) -> Self
    where
        F: FnMut(ProcessId) -> Box<dyn Protocol> + 'static,
    {
        self.respawn = Some(Box::new(factory));
        self
    }

    /// The processes this scenario delays past slot 0, in arrival order.
    pub fn delayed(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.arrivals.iter().map(|&(_, pid)| pid)
    }
}

impl Adversary for ScenarioAdversary {
    fn class(&self) -> AdversaryClass {
        self.class
    }

    fn inject(&mut self, view: &View<'_>) -> Injection {
        while self.arr_cursor < self.arrivals.len() {
            let (slot, pid) = self.arrivals[self.arr_cursor];
            if slot > self.clock {
                break;
            }
            self.arr_cursor += 1;
            if !view.has_arrived(pid) {
                return Injection::Arrive(pid);
            }
        }
        if self.slot_cursor < self.slot_crashes.len() {
            let (slot, pid) = self.slot_crashes[self.slot_cursor];
            if slot <= self.clock {
                self.slot_cursor += 1;
                // Cancel the victim's arrival if it is still pending, so
                // a pre-arrival crash does not later arrive.
                if let Some(entry) = self.arrivals[self.arr_cursor..]
                    .iter()
                    .position(|&(_, p)| p == pid)
                {
                    self.arrivals.remove(self.arr_cursor + entry);
                }
                return Injection::Crash(pid);
            }
        }
        for oc in &mut self.op_crashes {
            if !oc.fired && view.is_active(oc.pid) && view.steps_of(oc.pid) >= oc.ops {
                oc.fired = true;
                if self.churn {
                    if let Some(factory) = &mut self.respawn {
                        return Injection::Respawn(oc.pid, factory(oc.pid));
                    }
                }
                return Injection::Crash(oc.pid);
            }
        }
        Injection::None
    }

    fn next(&mut self, view: &View<'_>) -> Option<ProcessId> {
        self.clock += 1;
        if let Some(pid) = self.strategy.pick(view) {
            return Some(pid);
        }
        // No live process to schedule. If arrivals are still pending,
        // burn one slot on a not-yet-arrived process (a wasted slot in
        // the executor) so the workload clock keeps advancing toward the
        // next arrival; otherwise end the execution.
        if self.arr_cursor < self.arrivals.len() {
            return Some(self.arrivals[self.arr_cursor].1);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Execution;
    use crate::memory::Memory;
    use crate::op::MemOp;
    use crate::protocol::{Ctx, Poll, Protocol, Resume};
    use crate::word::{RegId, Word};

    /// Performs `left` writes to its register, then finishes with `tag`.
    struct Writer {
        reg: RegId,
        left: u32,
        tag: Word,
    }

    impl Protocol for Writer {
        fn resume(&mut self, _input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
            if self.left == 0 {
                Poll::Done(self.tag)
            } else {
                self.left -= 1;
                Poll::Op(MemOp::Write(self.reg, 1))
            }
        }
    }

    fn writers(n: usize, writes: u32) -> Execution {
        let mut mem = Memory::new();
        let regs = mem.alloc(n as u64, "w");
        let protos: Vec<Box<dyn Protocol>> = (0..n)
            .map(|i| {
                Box::new(Writer {
                    reg: regs.get(i as u64),
                    left: writes,
                    tag: 100 + i as Word,
                }) as Box<dyn Protocol>
            })
            .collect();
        Execution::new(mem, protos, 0)
    }

    #[test]
    fn axis_free_scenario_matches_bare_strategy() {
        // A scenario with default axes must reproduce the bare random
        // strategy bit for bit: same decisions, same step counts.
        let scenario = Scenario::builder().build();
        let mut exec = writers(5, 4);
        let mut adv = scenario.begin(&mut exec, 42);
        let out = exec.run_in_place(&mut adv);
        assert!(out.all_finished());

        let mut exec2 = writers(5, 4);
        let out2 = exec2.run_in_place(&mut RandomSchedule::new(42));
        assert_eq!(out, out2);
        assert_eq!(exec.steps(), exec2.steps());
    }

    #[test]
    fn staggered_arrivals_complete() {
        let scenario = Scenario::builder()
            .arrivals(ArrivalSpec::Staggered { gap: 3 })
            .strategy(StrategySpec::round_robin())
            .build();
        let mut exec = writers(4, 2);
        let mut adv = scenario.begin(&mut exec, 1);
        assert_eq!(adv.delayed().count(), 3, "pids 1..4 are delayed");
        let out = exec.run_in_place(&mut adv);
        assert!(out.all_finished(), "{out:?}");
        assert_eq!(exec.steps().total(), 8);
    }

    #[test]
    fn crash_at_slot_kills_victims_only() {
        let scenario = Scenario::builder()
            .faults(FaultSpec::CrashAtSlot {
                victims: 2,
                slot: 0,
            })
            .strategy(StrategySpec::round_robin())
            .build();
        let mut exec = writers(4, 3);
        let mut adv = scenario.begin(&mut exec, 5);
        let out = exec.run_in_place(&mut adv);
        assert_eq!(out.finished, 2);
        assert_eq!(exec.crashed_count(), 2);
        assert_eq!(exec.outcome(ProcessId(0)), None);
        assert_eq!(exec.outcome(ProcessId(1)), None);
        assert_eq!(exec.outcome(ProcessId(2)), Some(102));
        assert_eq!(exec.outcome(ProcessId(3)), Some(103));
        assert_eq!(exec.steps().of(ProcessId(0)), 0, "victim took no steps");
        assert_eq!(exec.steps().total(), 6);
    }

    #[test]
    fn crash_after_ops_freezes_victim_step_count() {
        let scenario = Scenario::builder()
            .faults(FaultSpec::CrashAfterOps { victims: 1, ops: 2 })
            .strategy(StrategySpec::round_robin())
            .build();
        let mut exec = writers(3, 5);
        let mut adv = scenario.begin(&mut exec, 9);
        let out = exec.run_in_place(&mut adv);
        assert_eq!(out.finished, 2);
        assert_eq!(exec.steps().of(ProcessId(0)), 2, "crashed at 2 ops");
        assert_eq!(exec.outcome(ProcessId(0)), None);
        assert_eq!(exec.steps().of(ProcessId(1)), 5);
    }

    #[test]
    fn churn_respawns_crashed_slot() {
        let scenario = Scenario::builder()
            .faults(FaultSpec::Churn { victims: 1, ops: 2 })
            .strategy(StrategySpec::round_robin())
            .build();
        let mut exec = writers(2, 4);
        let mut adv = scenario.begin(&mut exec, 3).with_respawn(move |_| {
            Box::new(Writer {
                reg: RegId(0),
                left: 1,
                tag: 777,
            })
        });
        let out = exec.run_in_place(&mut adv);
        assert!(out.all_finished(), "{out:?}");
        // Slot 0 finished as the respawned process.
        assert_eq!(exec.outcome(ProcessId(0)), Some(777));
        assert_eq!(exec.outcome(ProcessId(1)), Some(101));
        // Slot 0's counter: 2 pre-crash ops + 1 respawned op.
        assert_eq!(exec.steps().of(ProcessId(0)), 3);
    }

    #[test]
    fn churn_without_factory_is_permanent_crash() {
        let scenario = Scenario::builder()
            .faults(FaultSpec::Churn { victims: 1, ops: 1 })
            .strategy(StrategySpec::round_robin())
            .build();
        let mut exec = writers(2, 3);
        let mut adv = scenario.begin(&mut exec, 3);
        let out = exec.run_in_place(&mut adv);
        assert_eq!(out.finished, 1);
        assert_eq!(exec.crashed_count(), 1);
    }

    #[test]
    fn crash_before_arrival_cancels_it() {
        // Victim 1 would arrive at slot 10 but crashes at slot 2; victim
        // 0 is mid-protocol at slot 2 (5 writes) and crashes too.
        let scenario = Scenario::builder()
            .arrivals(ArrivalSpec::Staggered { gap: 10 })
            .faults(FaultSpec::CrashAtSlot {
                victims: 2,
                slot: 2,
            })
            .strategy(StrategySpec::round_robin())
            .build();
        let mut exec = writers(3, 5);
        let mut adv = scenario.begin(&mut exec, 0);
        let out = exec.run_in_place(&mut adv);
        assert_eq!(exec.crashed_count(), 2);
        assert_eq!(exec.steps().of(ProcessId(0)), 2, "crashed mid-protocol");
        assert_eq!(exec.steps().of(ProcessId(1)), 0, "arrival cancelled");
        assert_eq!(exec.outcome(ProcessId(2)), Some(102));
        assert!(!out.all_finished());
    }

    #[test]
    fn arrivals_pending_with_no_live_process_do_not_deadlock() {
        // One process, arriving at slot 5: the adversary must idle until
        // the arrival even though nothing is schedulable before it.
        let scenario = Scenario::builder()
            .arrivals(ArrivalSpec::Batched { size: 1, gap: 5 })
            .strategy(StrategySpec::round_robin())
            .build();
        let mut mem = Memory::new();
        let regs = mem.alloc(2, "w");
        let protos: Vec<Box<dyn Protocol>> = (0..2)
            .map(|i| {
                Box::new(Writer {
                    reg: regs.get(i as u64),
                    left: 1,
                    tag: i as Word,
                }) as Box<dyn Protocol>
            })
            .collect();
        let mut exec = Execution::new(mem, protos, 0);
        // Crash the slot-0 process immediately; process 1 arrives later.
        let scenario = Scenario::builder()
            .arrivals(scenario.arrivals())
            .faults(FaultSpec::CrashAtSlot {
                victims: 1,
                slot: 0,
            })
            .strategy(StrategySpec::round_robin())
            .build();
        let mut adv = scenario.begin(&mut exec, 0);
        let out = exec.run_in_place(&mut adv);
        assert_eq!(out.finished, 1);
        assert_eq!(exec.outcome(ProcessId(1)), Some(1));
    }

    #[test]
    fn random_late_arrivals_are_seed_deterministic() {
        let scenario = Scenario::builder()
            .arrivals(ArrivalSpec::RandomLate { max_delay: 16 })
            .build();
        let a: Vec<ProcessId> = scenario.adversary(8, 7).delayed().collect();
        let b: Vec<ProcessId> = scenario.adversary(8, 7).delayed().collect();
        let c: Vec<ProcessId> = scenario.adversary(8, 8).delayed().collect();
        assert_eq!(a, b);
        // Different seeds eventually differ (not guaranteed per seed pair,
        // but this pair does).
        let _ = c;
    }

    #[test]
    fn scenario_names_compose() {
        let s = Scenario::builder()
            .arrivals(ArrivalSpec::Batched { size: 2, gap: 4 })
            .faults(FaultSpec::Churn { victims: 1, ops: 3 })
            .strategy(StrategySpec::laggard_first())
            .build();
        assert_eq!(s.name(), "batched+churn+laggard-first");
        let named = Scenario::builder().named("special").build();
        assert_eq!(named.name(), "special");
    }

    #[test]
    fn new_strategies_complete_writers() {
        for spec in [
            StrategySpec::contention_max(),
            StrategySpec::laggard_first(),
            StrategySpec::write_chaser(),
            StrategySpec::oblivious_uniform(8),
            StrategySpec::oblivious_sequential(8),
            StrategySpec::round_robin(),
        ] {
            let scenario = Scenario::builder().strategy(spec.clone()).build();
            let mut exec = writers(4, 3);
            let mut adv = scenario.begin(&mut exec, 11);
            let out = exec.run_in_place(&mut adv);
            assert!(out.all_finished(), "{}: {out:?}", spec.name());
            assert_eq!(exec.steps().total(), 12, "{}", spec.name());
        }
    }

    #[test]
    fn laggard_first_keeps_lockstep() {
        let scenario = Scenario::builder()
            .strategy(StrategySpec::laggard_first())
            .build();
        let mut exec = writers(3, 4);
        let mut adv = scenario.begin(&mut exec, 2);
        exec.run_in_place(&mut adv);
        // Lockstep: deterministic round-robin-like order 0,1,2,0,1,2,...
        assert!(exec.steps().as_slice().iter().all(|&s| s == 4));
    }
}
