//! Human-readable execution traces.
//!
//! Debugging a randomized distributed algorithm means staring at
//! interleavings. This module renders a recorded [`crate::history::History`]
//! as an annotated, per-step listing — the tool that located both
//! historical safety bugs in the 2-process election (see
//! `rtas_primitives::two_process`).
//!
//! ```
//! use rtas_sim::prelude::*;
//! use rtas_sim::trace::render;
//! # use rtas_sim::history::RecordMode;
//!
//! # struct W(RegId, bool);
//! # impl Protocol for W {
//! #     fn resume(&mut self, _i: Resume, _c: &mut Ctx<'_>) -> Poll {
//! #         if self.1 { return Poll::Done(0); }
//! #         self.1 = true;
//! #         Poll::Op(MemOp::Write(self.0, 7))
//! #     }
//! # }
//! let mut mem = Memory::new();
//! let reg = mem.alloc(1, "demo").start();
//! let res = Execution::new(mem, vec![Box::new(W(reg, false))], 0)
//!     .with_recording(RecordMode::Full)
//!     .run(&mut RoundRobin::new(1));
//! let text = render(res.history(), None);
//! assert!(text.contains("P0"));
//! ```

use std::fmt::Write as _;

use crate::history::History;
use crate::op::OpKind;
use crate::word::Word;

/// Optional decoder turning a register value into a readable annotation
/// (e.g. unpacking the 2-process election's `(round, coin, claim)`
/// triple).
pub type ValueDecoder<'a> = &'a dyn Fn(Word) -> String;

/// Render a recorded history as text, one line per step.
///
/// Pass a `decoder` to annotate raw register values; `None` prints them
/// as plain integers.
pub fn render(history: &History, decoder: Option<ValueDecoder<'_>>) -> String {
    let mut out = String::new();
    if !history.is_full() {
        out.push_str("(history was not recorded; run with RecordMode::Full)\n");
        return out;
    }
    for e in history.events() {
        let value = match decoder {
            Some(d) => d(e.value),
            None => e.value.to_string(),
        };
        match e.kind {
            OpKind::Write => {
                let _ = writeln!(
                    out,
                    "step {:>4}  {}  write {:?} := {}",
                    e.step, e.pid, e.reg, value
                );
            }
            OpKind::Read => {
                let seen = match e.observed_writer {
                    Some(w) => format!("  (sees {w})"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "step {:>4}  {}  read  {:?} -> {}{}",
                    e.step, e.pid, e.reg, value, seen
                );
            }
        }
    }
    out
}

/// Summarize a history: step counts per process and the "sees" pairs.
pub fn summarize(history: &History, n_processes: usize) -> String {
    let mut out = String::new();
    if !history.is_full() {
        return "(history was not recorded)".to_string();
    }
    let _ = writeln!(out, "total events: {}", history.events().len());
    for i in 0..n_processes {
        let pid = crate::word::ProcessId(i);
        let _ = writeln!(out, "  {pid}: {} steps", history.steps_of(pid));
    }
    let classes = history.equivalence_classes(n_processes);
    let _ = writeln!(out, "visibility classes (≡_E): {classes:?}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RoundRobin;
    use crate::executor::Execution;
    use crate::history::RecordMode;
    use crate::memory::Memory;
    use crate::op::MemOp;
    use crate::protocol::{Ctx, Poll, Protocol, Resume};
    use crate::word::RegId;

    struct WriteRead {
        reg: RegId,
        state: u8,
    }

    impl Protocol for WriteRead {
        fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
            match self.state {
                0 => {
                    self.state = 1;
                    Poll::Op(MemOp::Write(self.reg, ctx.pid.index() as Word + 10))
                }
                1 => {
                    self.state = 2;
                    Poll::Op(MemOp::Read(self.reg))
                }
                _ => Poll::Done(input.read_value()),
            }
        }
    }

    fn recorded_history() -> crate::executor::ExecutionResult {
        let mut mem = Memory::new();
        let reg = mem.alloc(1, "t").start();
        let protos: Vec<Box<dyn Protocol>> = (0..2)
            .map(|_| Box::new(WriteRead { reg, state: 0 }) as Box<dyn Protocol>)
            .collect();
        Execution::new(mem, protos, 0)
            .with_recording(RecordMode::Full)
            .run(&mut RoundRobin::new(2))
    }

    #[test]
    fn render_contains_all_steps() {
        let res = recorded_history();
        let text = render(res.history(), None);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("write"));
        assert!(text.contains("read"));
        assert!(text.contains("sees"));
    }

    #[test]
    fn render_with_decoder() {
        let res = recorded_history();
        let decoder = |v: Word| format!("<{v}>");
        let text = render(res.history(), Some(&decoder));
        assert!(text.contains("<10>") || text.contains("<11>"));
    }

    #[test]
    fn render_without_recording_notes_it() {
        let mem = Memory::new();
        let res = Execution::new(mem, vec![], 0).run(&mut RoundRobin::new(1));
        let text = render(res.history(), None);
        assert!(text.contains("not recorded"));
    }

    #[test]
    fn summarize_reports_counts_and_classes() {
        let res = recorded_history();
        let text = summarize(res.history(), 2);
        assert!(text.contains("total events: 4"));
        assert!(text.contains("P0: 2 steps"));
        assert!(text.contains("≡_E"));
    }
}
