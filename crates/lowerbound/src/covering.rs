//! The covering argument's base case (Lemma 5.4, k = 0), executed.
//!
//! Section 5 opens with the observation driving the whole bound: run any
//! process solo from the initial configuration and — by nondeterministic
//! solo-termination plus the winner-uniqueness of leader election — it
//! *must* write to a register before finishing (otherwise a second
//! process's solo run would also win). So every process can be advanced
//! to a configuration where it **covers** a register, while no process is
//! visible on any register.
//!
//! [`covering_base_case`] performs this construction on an actual
//! implementation: it schedules only processes poised on *reads* until
//! every process is poised on a *write*, never executing a write. The
//! resulting report shows all `n` processes covering registers — the
//! `m₀ = n` base case — and the number of distinct covered registers.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use rtas_sim::adversary::{AdversaryClass, Strategy, View};
use rtas_sim::executor::Execution;
use rtas_sim::memory::Memory;
use rtas_sim::op::OpKind;
use rtas_sim::protocol::Protocol;
use rtas_sim::scenario::{Scenario, StrategySpec};
use rtas_sim::word::{ProcessId, RegId};

/// Result of the base-case construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveringReport {
    /// Number of processes poised on a write when the construction
    /// stopped (Lemma 5.4 requires all of them).
    pub covering_processes: usize,
    /// Total number of processes.
    pub processes: usize,
    /// The distinct registers covered.
    pub covered_registers: Vec<RegId>,
    /// Read steps executed during the construction.
    pub reads_executed: u64,
}

impl CoveringReport {
    /// Whether every process ended up covering a register.
    pub fn all_cover(&self) -> bool {
        self.covering_processes == self.processes
    }

    /// Number of distinct covered registers.
    pub fn distinct_covered(&self) -> usize {
        self.covered_registers.len()
    }
}

/// What the read-only covering driver observed when it stopped.
#[derive(Debug, Default)]
struct CoveringObservation {
    covered: Vec<RegId>,
    poised_writers: usize,
}

/// Strategy that schedules only processes poised on reads, stopping once
/// every active process is poised on a write. Records the covering
/// configuration into a shared observation cell, so the driver can run
/// inside a [`Scenario`] (whose adversary owns the strategy box).
struct ReadOnlyDriver {
    out: Arc<Mutex<CoveringObservation>>,
}

impl ReadOnlyDriver {
    /// The driver as a scenario strategy axis, paired with the shared
    /// cell its observation lands in.
    fn spec() -> (StrategySpec, Arc<Mutex<CoveringObservation>>) {
        let out = Arc::new(Mutex::new(CoveringObservation::default()));
        let handle = Arc::clone(&out);
        let spec = StrategySpec::new("covering-read-only", move |_, _| {
            Box::new(ReadOnlyDriver {
                out: Arc::clone(&handle),
            })
        });
        (spec, out)
    }
}

impl Strategy for ReadOnlyDriver {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Adaptive
    }

    fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
        let mut covered = Vec::new();
        let mut writer_count = 0;
        let mut reader = None;
        for pid in view.active() {
            match view.pending(pid) {
                Some(p) if p.kind == Some(OpKind::Write) => {
                    writer_count += 1;
                    if let Some(reg) = p.reg {
                        covered.push(reg);
                    }
                }
                Some(_) => reader = reader.or(Some(pid)),
                None => {}
            }
        }
        match reader {
            Some(pid) => Some(pid),
            None => {
                // Every active process is poised on a write: stop and
                // record the covering configuration.
                let mut obs = self.out.lock().expect("covering cell poisoned");
                obs.covered = covered;
                obs.poised_writers = writer_count;
                None
            }
        }
    }
}

/// Build the Lemma 5.4 base-case configuration for the given system.
///
/// The protocols should be the `elect()` calls of a leader-election
/// object for exactly these processes. Processes that *finish* without
/// ever writing would disprove solo-termination-safety; they are counted
/// as non-covering.
pub fn covering_base_case(
    memory: Memory,
    protocols: Vec<Box<dyn Protocol>>,
    seed: u64,
) -> CoveringReport {
    let n = protocols.len();
    let (spec, observation) = ReadOnlyDriver::spec();
    let scenario = Scenario::builder()
        .strategy(spec)
        .named("covering-base-case")
        .build();
    let result = Execution::new(memory, protocols, seed).run(&mut scenario.adversary(n, seed));
    let obs = observation.lock().expect("covering cell poisoned");
    let distinct: HashSet<RegId> = obs.covered.iter().copied().collect();
    let mut covered_registers: Vec<RegId> = distinct.into_iter().collect();
    covered_registers.sort();
    CoveringReport {
        covering_processes: obs.poised_writers,
        processes: n,
        covered_registers,
        reads_executed: result.steps().total(),
    }
}

/// Observe the maximum number of *simultaneously covered* distinct
/// registers over a full (randomly scheduled) execution.
///
/// Theorem 5.1 constructs an execution in which ≥ `log₂ n − 1` registers
/// are covered at once; this metric is the executable shadow of that
/// construction: it scans each scheduling decision for the set of poised
/// write targets and reports the maximum cardinality seen.
pub fn max_simultaneous_covering(
    memory: Memory,
    protocols: Vec<Box<dyn Protocol>>,
    seed: u64,
) -> usize {
    use rtas_sim::rng::{Randomness, SplitMix64};

    struct Watcher {
        rng: SplitMix64,
        best: Arc<Mutex<usize>>,
    }

    impl Strategy for Watcher {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Adaptive
        }

        fn pick(&mut self, view: &View<'_>) -> Option<ProcessId> {
            let covered: HashSet<RegId> = view
                .active()
                .into_iter()
                .filter_map(|p| view.pending(p))
                .filter(|p| p.kind == Some(OpKind::Write))
                .filter_map(|p| p.reg)
                .collect();
            {
                let mut best = self.best.lock().expect("watcher cell poisoned");
                *best = (*best).max(covered.len());
            }
            let active = view.active();
            if active.is_empty() {
                return None;
            }
            let i = self.rng.choose(active.len() as u64) as usize;
            Some(active[i])
        }
    }

    let n = protocols.len();
    let best = Arc::new(Mutex::new(0usize));
    let handle = Arc::clone(&best);
    let scenario = Scenario::builder()
        .strategy(StrategySpec::new("covering-watcher", move |_, seed| {
            Box::new(Watcher {
                rng: SplitMix64::new(seed),
                best: Arc::clone(&handle),
            })
        }))
        .named("max-simultaneous-covering")
        .build();
    let _ = Execution::new(memory, protocols, seed).run(&mut scenario.adversary(n, seed));
    let result = *best.lock().expect("watcher cell poisoned");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_algorithms::loglog::LogLogLe;
    use rtas_algorithms::logstar::LogStarLe;
    use rtas_algorithms::ratrace::SpaceEfficientRatRace;
    use rtas_primitives::{RoleLeaderElect, TwoProcessLe};

    #[test]
    fn two_process_le_base_case() {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let report = covering_base_case(mem, vec![le.elect_as(0), le.elect_as(1)], 0);
        assert!(report.all_cover(), "{report:?}");
        // Each covers its own announcement register.
        assert_eq!(report.distinct_covered(), 2);
        assert_eq!(report.reads_executed, 0, "first step must be a write");
    }

    #[test]
    fn logstar_base_case_all_processes_cover() {
        for n in [4usize, 8, 16] {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, n);
            let protos = (0..n).map(|_| le.elect()).collect();
            let report = covering_base_case(mem, protos, 1);
            assert!(report.all_cover(), "n={n}: {report:?}");
            assert!(report.distinct_covered() >= 1);
        }
    }

    #[test]
    fn ratrace_base_case_all_processes_cover() {
        let n = 8;
        let mut mem = Memory::new();
        let rr = SpaceEfficientRatRace::new(&mut mem, n);
        let protos = (0..n).map(|_| rr.elect()).collect();
        let report = covering_base_case(mem, protos, 2);
        assert!(report.all_cover(), "{report:?}");
    }

    #[test]
    fn max_simultaneous_covering_reaches_log_n() {
        // The lower bound says SOME execution covers log n − 1 registers;
        // even random executions of real algorithms reach well beyond
        // that at the start (all n processes poised on writes).
        let n = 16usize;
        let mut best = 0;
        for seed in 0..5 {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, n);
            let protos = (0..n).map(|_| le.elect()).collect();
            best = best.max(max_simultaneous_covering(mem, protos, seed));
        }
        // log2(16) − 1 = 3.
        assert!(best >= 3, "max covering {best}");
    }

    #[test]
    fn loglog_base_case_all_processes_cover() {
        let n = 8;
        let mut mem = Memory::new();
        let le = LogLogLe::new(&mut mem, n);
        let protos = (0..n).map(|_| le.elect()).collect();
        let report = covering_base_case(mem, protos, 3);
        // Sifting processes may randomly choose to read first — but they
        // then still must write before finishing… unless elected by the
        // early-read rule. Those that finish without writing exist here
        // because the *object* is accessed by all n processes; they are
        // reported as non-covering rather than asserted.
        assert!(report.covering_processes >= 1, "{report:?}");
    }
}
