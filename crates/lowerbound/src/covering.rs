//! The covering argument's base case (Lemma 5.4, k = 0), executed.
//!
//! Section 5 opens with the observation driving the whole bound: run any
//! process solo from the initial configuration and — by nondeterministic
//! solo-termination plus the winner-uniqueness of leader election — it
//! *must* write to a register before finishing (otherwise a second
//! process's solo run would also win). So every process can be advanced
//! to a configuration where it **covers** a register, while no process is
//! visible on any register.
//!
//! [`covering_base_case`] performs this construction on an actual
//! implementation: it schedules only processes poised on *reads* until
//! every process is poised on a *write*, never executing a write. The
//! resulting report shows all `n` processes covering registers — the
//! `m₀ = n` base case — and the number of distinct covered registers.

use std::collections::HashSet;

use rtas_sim::adversary::{Adversary, AdversaryClass, View};
use rtas_sim::executor::Execution;
use rtas_sim::memory::Memory;
use rtas_sim::op::OpKind;
use rtas_sim::protocol::Protocol;
use rtas_sim::word::{ProcessId, RegId};

/// Result of the base-case construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveringReport {
    /// Number of processes poised on a write when the construction
    /// stopped (Lemma 5.4 requires all of them).
    pub covering_processes: usize,
    /// Total number of processes.
    pub processes: usize,
    /// The distinct registers covered.
    pub covered_registers: Vec<RegId>,
    /// Read steps executed during the construction.
    pub reads_executed: u64,
}

impl CoveringReport {
    /// Whether every process ended up covering a register.
    pub fn all_cover(&self) -> bool {
        self.covering_processes == self.processes
    }

    /// Number of distinct covered registers.
    pub fn distinct_covered(&self) -> usize {
        self.covered_registers.len()
    }
}

/// Adversary that schedules only processes poised on reads, stopping once
/// every active process is poised on a write. Also records the covered
/// registers at that point.
struct ReadOnlyDriver {
    covered: Vec<RegId>,
    poised_writers: usize,
}

impl Adversary for ReadOnlyDriver {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Adaptive
    }

    fn next(&mut self, view: &View<'_>) -> Option<ProcessId> {
        let mut covered = Vec::new();
        let mut writer_count = 0;
        let mut reader = None;
        for pid in view.active() {
            match view.pending(pid) {
                Some(p) if p.kind == Some(OpKind::Write) => {
                    writer_count += 1;
                    if let Some(reg) = p.reg {
                        covered.push(reg);
                    }
                }
                Some(_) => reader = reader.or(Some(pid)),
                None => {}
            }
        }
        match reader {
            Some(pid) => Some(pid),
            None => {
                // Every active process is poised on a write: stop and
                // record the covering configuration.
                self.covered = covered;
                self.poised_writers = writer_count;
                None
            }
        }
    }
}

/// Build the Lemma 5.4 base-case configuration for the given system.
///
/// The protocols should be the `elect()` calls of a leader-election
/// object for exactly these processes. Processes that *finish* without
/// ever writing would disprove solo-termination-safety; they are counted
/// as non-covering.
pub fn covering_base_case(
    memory: Memory,
    protocols: Vec<Box<dyn Protocol>>,
    seed: u64,
) -> CoveringReport {
    let n = protocols.len();
    let mut driver = ReadOnlyDriver {
        covered: Vec::new(),
        poised_writers: 0,
    };
    let result = Execution::new(memory, protocols, seed).run(&mut driver);
    let distinct: HashSet<RegId> = driver.covered.iter().copied().collect();
    let mut covered_registers: Vec<RegId> = distinct.into_iter().collect();
    covered_registers.sort();
    CoveringReport {
        covering_processes: driver.poised_writers,
        processes: n,
        covered_registers,
        reads_executed: result.steps().total(),
    }
}

/// Observe the maximum number of *simultaneously covered* distinct
/// registers over a full (randomly scheduled) execution.
///
/// Theorem 5.1 constructs an execution in which ≥ `log₂ n − 1` registers
/// are covered at once; this metric is the executable shadow of that
/// construction: it scans each scheduling decision for the set of poised
/// write targets and reports the maximum cardinality seen.
pub fn max_simultaneous_covering(
    memory: Memory,
    protocols: Vec<Box<dyn Protocol>>,
    seed: u64,
) -> usize {
    use rtas_sim::rng::{Randomness, SplitMix64};

    struct Watcher {
        rng: SplitMix64,
        best: usize,
    }

    impl Adversary for Watcher {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Adaptive
        }

        fn next(&mut self, view: &View<'_>) -> Option<ProcessId> {
            let covered: HashSet<RegId> = view
                .active()
                .into_iter()
                .filter_map(|p| view.pending(p))
                .filter(|p| p.kind == Some(OpKind::Write))
                .filter_map(|p| p.reg)
                .collect();
            self.best = self.best.max(covered.len());
            let active = view.active();
            if active.is_empty() {
                return None;
            }
            let i = self.rng.choose(active.len() as u64) as usize;
            Some(active[i])
        }
    }

    let mut watcher = Watcher {
        rng: SplitMix64::new(seed),
        best: 0,
    };
    let _ = Execution::new(memory, protocols, seed).run(&mut watcher);
    watcher.best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_algorithms::loglog::LogLogLe;
    use rtas_algorithms::logstar::LogStarLe;
    use rtas_algorithms::ratrace::SpaceEfficientRatRace;
    use rtas_primitives::{RoleLeaderElect, TwoProcessLe};

    #[test]
    fn two_process_le_base_case() {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let report = covering_base_case(mem, vec![le.elect_as(0), le.elect_as(1)], 0);
        assert!(report.all_cover(), "{report:?}");
        // Each covers its own announcement register.
        assert_eq!(report.distinct_covered(), 2);
        assert_eq!(report.reads_executed, 0, "first step must be a write");
    }

    #[test]
    fn logstar_base_case_all_processes_cover() {
        for n in [4usize, 8, 16] {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, n);
            let protos = (0..n).map(|_| le.elect()).collect();
            let report = covering_base_case(mem, protos, 1);
            assert!(report.all_cover(), "n={n}: {report:?}");
            assert!(report.distinct_covered() >= 1);
        }
    }

    #[test]
    fn ratrace_base_case_all_processes_cover() {
        let n = 8;
        let mut mem = Memory::new();
        let rr = SpaceEfficientRatRace::new(&mut mem, n);
        let protos = (0..n).map(|_| rr.elect()).collect();
        let report = covering_base_case(mem, protos, 2);
        assert!(report.all_cover(), "{report:?}");
    }

    #[test]
    fn max_simultaneous_covering_reaches_log_n() {
        // The lower bound says SOME execution covers log n − 1 registers;
        // even random executions of real algorithms reach well beyond
        // that at the start (all n processes poised on writes).
        let n = 16usize;
        let mut best = 0;
        for seed in 0..5 {
            let mut mem = Memory::new();
            let le = LogStarLe::new(&mut mem, n);
            let protos = (0..n).map(|_| le.elect()).collect();
            best = best.max(max_simultaneous_covering(mem, protos, seed));
        }
        // log2(16) − 1 = 3.
        assert!(best >= 3, "max covering {best}");
    }

    #[test]
    fn loglog_base_case_all_processes_cover() {
        let n = 8;
        let mut mem = Memory::new();
        let le = LogLogLe::new(&mut mem, n);
        let protos = (0..n).map(|_| le.elect()).collect();
        let report = covering_base_case(mem, protos, 3);
        // Sifting processes may randomly choose to read first — but they
        // then still must write before finishing… unless elected by the
        // early-read rule. Those that finish without writing exist here
        // because the *object* is accessed by all n processes; they are
        // reported as non-covering rather than asserted.
        assert!(report.covering_processes >= 1, "{report:?}");
    }
}
