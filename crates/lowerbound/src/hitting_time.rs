//! Hitting times of non-increasing Markov chains (Lemma 2.1).
//!
//! The ladder analysis of Section 2.1 bounds the number of levels by
//! `Δ_{f−1}(k)`: the worst expected time for a non-increasing Markov
//! chain on `{0, …, n}` with rate at most `r(j) = f(j) − 1` to hit 0,
//! started at `k`. Two tools here:
//!
//! * [`expected_hitting_times`] — exact expected hitting times for an
//!   explicit non-increasing chain (solved in one backward pass);
//! * [`iterated_rate_depth`] — the deterministic iteration count of
//!   `j ↦ r(j)` until the value drops below 1, which tracks `Δ_r` up to
//!   constants and exhibits the Θ(log* k) behaviour for
//!   `r(j) = 2·log₂ j + 5` (experiment E10).

/// Exact expected hitting times to state 0 for a **non-increasing** chain.
///
/// `transitions[j]` lists `(i, p)` pairs with `i ≤ j` and `Σp = 1`;
/// self-loops (`i == j`) are allowed with probability < 1 for `j > 0`.
/// Returns `E[T_0]` indexed by start state; `E[0] = 0`.
///
/// # Panics
///
/// Panics if a row's probabilities do not sum to ≈1, move upward, or
/// self-loop with probability 1 (for `j > 0`).
pub fn expected_hitting_times(transitions: &[Vec<(usize, f64)>]) -> Vec<f64> {
    let n = transitions.len();
    let mut e = vec![0.0f64; n];
    for j in 1..n {
        let row = &transitions[j];
        let total: f64 = row.iter().map(|&(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "row {j} probabilities sum to {total}"
        );
        let mut self_p = 0.0;
        let mut acc = 1.0; // the step itself
        for &(i, p) in row {
            assert!(i <= j, "row {j} moves upward to {i}");
            if i == j {
                self_p += p;
            } else {
                acc += p * e[i];
            }
        }
        assert!(self_p < 1.0 - 1e-12, "state {j} is absorbing");
        e[j] = acc / (1.0 - self_p);
    }
    e
}

/// Number of iterations of `j ↦ rate(j)` from `start` until the value
/// drops below `floor` (capped at 128 to guard non-contracting rates).
///
/// For `rate(j) = f(j) − 1` this is the natural deterministic version of
/// `Δ_{f−1}`: each ladder level maps an expected `j` survivors to at most
/// `f(j) − 1`.
pub fn iterated_rate_depth(rate: impl Fn(f64) -> f64, start: f64, floor: f64) -> u32 {
    let mut v = start;
    let mut depth = 0;
    while v >= floor && depth < 128 {
        let next = rate(v);
        assert!(
            next >= 0.0,
            "rate produced a negative expected count: {next}"
        );
        // A non-contracting rate would loop forever; the cap reports it.
        v = next;
        depth += 1;
    }
    depth
}

/// The Lemma 2.2 rate: `r(j) = f(j) − 1` with `f(j) = min(j, 2·log₂ j +
/// 6)` — at most `j` processes can be elected, and the splitter always
/// retires one, so the effective rate is `min(j − 1, 2·log₂ j + 5)`.
/// (Without the `j − 1` cap the logarithmic expression has a fixed point
/// near 12 and the iteration would stall.)
pub fn geometric_ge_rate(j: f64) -> f64 {
    if j <= 1.0 {
        0.0
    } else {
        (j - 1.0).min(2.0 * j.log2() + 5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_decrement_chain() {
        // j → j−1 with probability 1: E[j] = j.
        let chain: Vec<Vec<(usize, f64)>> = (0..6)
            .map(|j| if j == 0 { vec![] } else { vec![(j - 1, 1.0)] })
            .collect();
        let e = expected_hitting_times(&chain);
        for (j, &ej) in e.iter().enumerate() {
            assert!((ej - j as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn lazy_chain_doubles_time() {
        // Stay with p = 1/2, else step down: E[j] = 2j.
        let chain: Vec<Vec<(usize, f64)>> = (0..5)
            .map(|j| {
                if j == 0 {
                    vec![]
                } else {
                    vec![(j, 0.5), (j - 1, 0.5)]
                }
            })
            .collect();
        let e = expected_hitting_times(&chain);
        for (j, &ej) in e.iter().enumerate() {
            assert!((ej - 2.0 * j as f64).abs() < 1e-9, "j={j} e={ej}");
        }
    }

    #[test]
    fn halving_chain_is_logarithmic() {
        // j → ⌈j/2⌉−ish: E grows like log j.
        let n = 1024;
        let chain: Vec<Vec<(usize, f64)>> = (0..=n)
            .map(|j| if j == 0 { vec![] } else { vec![(j / 2, 1.0)] })
            .collect();
        let e = expected_hitting_times(&chain);
        assert!((e[1024] - 11.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "absorbing")]
    fn absorbing_state_panics() {
        let chain = vec![vec![], vec![(1usize, 1.0)]];
        let _ = expected_hitting_times(&chain);
    }

    #[test]
    #[should_panic(expected = "moves upward")]
    fn increasing_chain_panics() {
        let chain = vec![vec![], vec![(2usize, 1.0)], vec![(1usize, 1.0)]];
        let _ = expected_hitting_times(&chain);
    }

    #[test]
    fn iterated_geometric_rate_is_log_star_like() {
        // Depth for the Lemma 2.2 rate behaves like log*: single-digit
        // even for astronomically large k, and growing with k.
        // The depth is log*(k) + O(1): the log phase collapses any k to
        // ≈12 within log* k steps, then the −1 cap walks down linearly.
        let d16 = iterated_rate_depth(geometric_ge_rate, 16.0, 1.0);
        let d_2_64 = iterated_rate_depth(geometric_ge_rate, 2f64.powi(64), 1.0);
        let d_2_1000 = iterated_rate_depth(geometric_ge_rate, 2f64.powi(1000), 1.0);
        assert!(d16 <= 20, "d16={d16}");
        assert!(d_2_64 <= 25, "d_2_64={d_2_64}");
        assert!(d_2_1000 <= 30, "d_2_1000={d_2_1000}");
        assert!(d16 <= d_2_64 && d_2_64 <= d_2_1000);
    }

    #[test]
    fn iterated_linear_rate_hits_cap() {
        // A non-contracting rate (identity) must hit the safety cap.
        let d = iterated_rate_depth(|j| j, 10.0, 1.0);
        assert_eq!(d, 128);
    }

    #[test]
    fn sifting_rate_is_log_log_like() {
        // r(j) = 2√j: depth ~ log log j.
        let rate = |j: f64| 2.0 * j.sqrt();
        let d = iterated_rate_depth(rate, 2f64.powi(32), 16.0);
        assert!(d <= 6, "d={d}");
    }
}
