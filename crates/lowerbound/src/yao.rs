//! Theorem 6.1: a 2-process time lower bound for randomized TAS.
//!
//! For any randomized 2-process TAS and any `t > 0`, some oblivious
//! schedule in `S_t` (the balanced schedules of length `2t`) makes some
//! process take ≥ t steps with probability at least `1/4^t ≥ 1/|S_t|`.
//! The proof is Yao's principle over the `C(2t,t) ≤ 4^t` schedules plus
//! the deterministic wait-free impossibility.
//!
//! [`schedule_tail_probabilities`] measures the empirical counterpart for
//! a concrete implementation: for every schedule in `S_t`, estimate
//! `Pr[some process takes ≥ t steps]`, and report the maximum over
//! schedules next to the `1/4^t` bound (experiment E7).

use rtas_sim::adversary::ObliviousAdversary;
use rtas_sim::executor::Execution;
use rtas_sim::memory::Memory;
use rtas_sim::protocol::Protocol;
use rtas_sim::scenario::{Scenario, StrategySpec};
use rtas_sim::schedule::Schedule;
use rtas_sim::word::ProcessId;

/// The scenario replaying one fixed balanced schedule (the `S_t` member
/// under test): oblivious strategy, no arrival or fault axes.
fn replay_scenario(schedule: Schedule) -> Scenario {
    Scenario::builder()
        .strategy(StrategySpec::new("oblivious-fixed", move |_, _| {
            Box::new(ObliviousAdversary::new(schedule.clone()))
        }))
        .named("yao-balanced-replay")
        .build()
}

/// Empirical tail probabilities for one `t`.
#[derive(Debug, Clone, PartialEq)]
pub struct TailReport {
    /// The step bound `t`.
    pub t: usize,
    /// Number of schedules examined (`C(2t, t)`).
    pub schedules: usize,
    /// Max over schedules of the estimated `Pr[max steps ≥ t]`.
    pub max_tail: f64,
    /// Mean over schedules of the estimated tail probability.
    pub mean_tail: f64,
    /// The theorem's bound `1/4^t`.
    pub bound: f64,
}

impl TailReport {
    /// Whether the measured worst schedule meets the theoretical bound.
    pub fn meets_bound(&self) -> bool {
        self.max_tail >= self.bound
    }
}

/// Estimate, for every balanced 2-process schedule of length `2t`, the
/// probability that some process fails to finish within fewer than `t`
/// steps, using `trials` seeded runs of the system from `factory`.
///
/// `factory(seed)` must build a fresh 2-process system (memory plus
/// exactly two protocols).
///
/// # Panics
///
/// Panics if the factory produces anything but two protocols, or if
/// `trials == 0`.
pub fn schedule_tail_probabilities(
    t: usize,
    trials: u64,
    base_seed: u64,
    mut factory: impl FnMut() -> (Memory, Vec<Box<dyn Protocol>>),
) -> TailReport {
    assert!(trials > 0, "need at least one trial");
    let schedules = Schedule::all_balanced_two_process(t);
    let mut max_tail: f64 = 0.0;
    let mut sum_tail = 0.0;
    for (si, schedule) in schedules.iter().enumerate() {
        let scenario = replay_scenario(schedule.clone());
        let mut hits = 0u64;
        for trial in 0..trials {
            let (mem, protos) = factory();
            assert_eq!(protos.len(), 2, "Theorem 6.1 is about two processes");
            let seed = base_seed
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(si as u64 * 1_000_003 + trial);
            let mut adv = scenario.adversary(2, seed);
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            // "Does not finish within fewer than t steps": unfinished after
            // its t schedule slots, or finished using ≥ t steps.
            let slow = (0..2).any(|i| {
                let pid = ProcessId(i);
                res.outcome(pid).is_none() || res.steps().of(pid) >= t as u64
            });
            if slow {
                hits += 1;
            }
        }
        let tail = hits as f64 / trials as f64;
        max_tail = max_tail.max(tail);
        sum_tail += tail;
    }
    TailReport {
        t,
        schedules: schedules.len(),
        max_tail,
        mean_tail: sum_tail / schedules.len() as f64,
        bound: 0.25f64.powi(t as i32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_primitives::{RoleLeaderElect, TwoProcessLe};

    fn two_le_factory() -> (Memory, Vec<Box<dyn Protocol>>) {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        (mem, vec![le.elect_as(0), le.elect_as(1)])
    }

    #[test]
    fn small_t_tail_is_one() {
        // Our 2-process election needs ≥ 4 steps even solo, so for t ≤ 4
        // the tail probability is 1 under every schedule.
        for t in 1..=4 {
            let report = schedule_tail_probabilities(t, 20, 7, two_le_factory);
            assert_eq!(report.max_tail, 1.0, "t={t}");
            assert!(report.meets_bound());
        }
    }

    #[test]
    fn bound_holds_for_moderate_t() {
        for t in 5..=7 {
            let report = schedule_tail_probabilities(t, 60, 11, two_le_factory);
            assert!(
                report.meets_bound(),
                "t={t}: max tail {} < bound {}",
                report.max_tail,
                report.bound
            );
        }
    }

    #[test]
    fn schedule_count_is_central_binomial() {
        let report = schedule_tail_probabilities(4, 5, 1, two_le_factory);
        assert_eq!(report.schedules, 70); // C(8,4)
        assert!(report.mean_tail <= report.max_tail);
    }

    #[test]
    #[should_panic(expected = "two processes")]
    fn wrong_arity_panics() {
        let _ = schedule_tail_probabilities(2, 1, 0, || {
            let mut mem = Memory::new();
            let le = TwoProcessLe::new(&mut mem, "2le");
            (mem, vec![le.elect_as(0)])
        });
    }
}
