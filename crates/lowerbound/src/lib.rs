//! # rtas-lowerbound — the paper's lower bounds, made executable
//!
//! Machinery for the two lower bounds of Giakkoupis & Woelfel (PODC 2012)
//! and the Markov-chain calibration of Lemma 2.1:
//!
//! * [`recurrence`] — Section 5's covering recurrence `f(k+1) = f(k) −
//!   ⌊f(k)/(n−k)⌋ + 1`, its closed form (Claim 5.5), and the resulting
//!   Ω(log n) register bound (`f(n−4) = 4(log₂ n − 1)`), all computed
//!   exactly (experiment E6).
//! * [`covering`] — the base case of the covering argument (Lemma 5.4,
//!   k = 0) executed against *real* leader-election implementations: run
//!   every process solo until it is poised to write; nondeterministic
//!   solo-termination forces all `n` processes to cover registers while
//!   none is visible.
//! * [`hitting_time`] — exact expected hitting times of non-increasing
//!   Markov chains, and the iterated-rate depth `Δ_{f−1}(k)` that bounds
//!   the ladder length in Lemma 2.1 (Θ(log* k) for `f(k) = 2·log k + 6`;
//!   experiment E10).
//! * [`yao`] — Theorem 6.1's 2-process time bound: over all balanced
//!   oblivious schedules of length `2t`, some schedule keeps a process
//!   busy for ≥ t steps with probability ≥ 1/4^t (experiment E7).

//! ```
//! use rtas_lowerbound::recurrence::{closed_form_f, register_lower_bound};
//!
//! // Theorem 5.1's quantity, exactly:
//! assert_eq!(closed_form_f(1024, 1020), 4 * 9);
//! assert_eq!(register_lower_bound(1024), 9);
//! ```

pub mod covering;
pub mod hitting_time;
pub mod recurrence;
pub mod yao;

pub use covering::{covering_base_case, max_simultaneous_covering, CoveringReport};
pub use hitting_time::{expected_hitting_times, iterated_rate_depth};
pub use recurrence::{closed_form_f, delta_step, f_sequence, interval_index, register_lower_bound};
pub use yao::{schedule_tail_probabilities, TailReport};
