//! The covering recurrence of Section 5.
//!
//! Lemma 5.4 constructs executions in rounds; `f(k)` lower-bounds the
//! number of "undecided representative" processes after round `k`:
//!
//! ```text
//! f(0)   = n,
//! f(k+1) = f(k) − ⌊f(k) / (n − k)⌋ + 1.
//! ```
//!
//! Claim 5.5 gives the closed form: for `k ∈ I(s) = {n − n/2^s, …,
//! n − n/2^(s+1) − 1}` (with `n` a power of two),
//!
//! ```text
//! f(k) = n·(s+1)/2^s − s·(k − n + n/2^s),   and   δ(k+1) = s.
//! ```
//!
//! Evaluating at `k = n − 4 ∈ I(log₂ n − 2)` yields `f(n−4) =
//! 4·(log₂ n − 1)`: at least `log₂ n − 1` registers are covered (each by
//! at most 4 processes), hence the Ω(log n) space bound of Theorem 5.1.
//! This module computes both forms exactly so the experiment (E6) can
//! verify the claim for every `n` rather than trusting the algebra.

/// The sequence `f(0), f(1), …, f(n−1)` for `n` processes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn f_sequence(n: u64) -> Vec<u64> {
    assert!(n > 0, "need at least one process");
    let mut f = Vec::with_capacity(n as usize);
    let mut value = n;
    for k in 0..n {
        f.push(value);
        // f(k+1) = f(k) − ⌊f(k)/(n−k)⌋ + 1, defined while k < n.
        value = value - value / (n - k) + 1;
    }
    f
}

/// One step of the recurrence: `f(k+1)` given `f(k)` and `n − k`.
pub fn next_f(f_k: u64, n_minus_k: u64) -> u64 {
    assert!(n_minus_k > 0);
    f_k - f_k / n_minus_k + 1
}

/// `δ(k+1) = ⌊f(k)/(n−k)⌋ − 1`, the per-round loss.
pub fn delta_step(f_k: u64, n_minus_k: u64) -> i64 {
    (f_k / n_minus_k) as i64 - 1
}

/// The interval index `s` with `k ∈ I(s)` (requires `n` a power of two
/// and `0 ≤ k < n`).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `k ≥ n`.
pub fn interval_index(n: u64, k: u64) -> u32 {
    assert!(n.is_power_of_two(), "n must be a power of two");
    assert!(k < n, "k must be below n");
    // I(s) = [n − n/2^s, n − n/2^(s+1) − 1]; k ∈ I(s) ⟺
    // n/2^(s+1) < n − k ≤ n/2^s.
    let gap = n - k;
    let mut s = 0;
    while n >> (s + 1) >= gap {
        s += 1;
    }
    s
}

/// Claim 5.5(a): the closed form of `f(k)` for `n` a power of two.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `k ≥ n`.
pub fn closed_form_f(n: u64, k: u64) -> u64 {
    let s = interval_index(n, k);
    let pow = 1u64 << s;
    // f(k) = n(s+1)/2^s − s(k − n + n/2^s); all terms are exact integers
    // for k in I(s).
    let base = n * (s as u64 + 1) / pow;
    let d = k - (n - n / pow);
    base - s as u64 * d
}

/// Theorem 5.1's register bound: any nondeterministic solo-terminating
/// leader election for `n` processes (a power of two ≥ 8) needs at least
/// `log₂ n − 1` registers, because `f(n−4) = 4(log₂ n − 1)` processes
/// still cover registers when no register is covered by more than 4.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `n < 8`.
pub fn register_lower_bound(n: u64) -> u64 {
    assert!(n.is_power_of_two() && n >= 8, "need a power of two n >= 8");
    let covered = closed_form_f(n, n - 4);
    covered.div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_sequence_starts_at_n() {
        let f = f_sequence(16);
        assert_eq!(f[0], 16);
        // f(1) = 16 − 1 + 1 = 16 (loss starts once f(k)/(n−k) ≥ 2).
        assert_eq!(f[1], 16);
    }

    #[test]
    fn recurrence_matches_closed_form_for_powers_of_two() {
        for exp in 3..=14 {
            let n = 1u64 << exp;
            let f = f_sequence(n);
            for k in 0..n {
                assert_eq!(
                    f[k as usize],
                    closed_form_f(n, k),
                    "n={n} k={k} (s={})",
                    interval_index(n, k)
                );
            }
        }
    }

    #[test]
    fn delta_is_constant_on_intervals() {
        // Claim 5.5(b): δ(k+1) = s for k ∈ I(s).
        for exp in 3..=10 {
            let n = 1u64 << exp;
            let f = f_sequence(n);
            for k in 0..n - 1 {
                let s = interval_index(n, k);
                assert_eq!(delta_step(f[k as usize], n - k), s as i64, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn theorem_value_at_n_minus_4() {
        // f(n−4) = 4(log₂ n − 1).
        for exp in 3..=20 {
            let n = 1u64 << exp;
            assert_eq!(closed_form_f(n, n - 4), 4 * (exp as u64 - 1), "n={n}");
        }
    }

    #[test]
    fn register_lower_bound_is_log_n_minus_one() {
        assert_eq!(register_lower_bound(8), 2);
        assert_eq!(register_lower_bound(1024), 9);
        assert_eq!(register_lower_bound(1 << 20), 19);
    }

    #[test]
    fn interval_index_boundaries() {
        let n = 16u64;
        // I(0) = [0, 7], I(1) = [8, 11], I(2) = [12, 13], I(3) = [14],
        // I(4) = [15] (the last two intervals are single points because
        // n/2^(s+1) rounds to zero).
        assert_eq!(interval_index(n, 0), 0);
        assert_eq!(interval_index(n, 7), 0);
        assert_eq!(interval_index(n, 8), 1);
        assert_eq!(interval_index(n, 11), 1);
        assert_eq!(interval_index(n, 12), 2);
        assert_eq!(interval_index(n, 13), 2);
        assert_eq!(interval_index(n, 14), 3);
        assert_eq!(interval_index(n, 15), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = interval_index(12, 3);
    }

    #[test]
    fn f_is_non_increasing_after_warmup() {
        let f = f_sequence(256);
        for w in f.windows(2) {
            assert!(w[1] <= w[0], "f must be non-increasing: {w:?}");
        }
    }
}
