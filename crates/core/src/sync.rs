//! Small shared concurrency primitives used by the epoch-recycling
//! layers (`rtas-load`'s arena, `rtas-svc`'s keyed namespaces): one
//! definition each, so padding and backoff tuning cannot drift between
//! the sites that copy-paste them.

/// Pad (and align) a value to two cache lines: 128 bytes covers the
/// adjacent-line prefetcher on common x86 parts as well as 64-byte
/// lines elsewhere — neighbors in a `Vec<CachePadded<T>>` never
/// false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
pub struct CachePadded<T>(pub T);

/// The spin-then-yield discipline for short epoch waits: spin briefly
/// (the common case — the peer is mid-operation on another core), then
/// yield so an oversubscribed host cannot livelock the thread being
/// waited on out of its time slice.
#[derive(Debug, Default)]
pub struct Backoff {
    spins: u32,
}

impl Backoff {
    /// A fresh backoff (starts in the spinning phase).
    pub fn new() -> Self {
        Backoff { spins: 0 }
    }

    /// Wait one step: a spin hint for the first 64 calls, a scheduler
    /// yield afterwards.
    pub fn snooze(&mut self) {
        self.spins += 1;
        if self.spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_occupies_full_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 130]>>(), 256);
    }

    #[test]
    fn backoff_transitions_from_spin_to_yield() {
        let mut backoff = Backoff::new();
        for _ in 0..200 {
            backoff.snooze(); // must not panic or wrap
        }
        assert!(backoff.spins >= 200);
    }
}
