//! Native execution: the verified protocols on real atomics.
//!
//! The simulator protocols ([`rtas_sim::protocol::Protocol`]) are pure
//! state machines that interact with the world only through single-register
//! atomic reads and writes. That makes them directly executable on real
//! hardware: [`NativeMemory`] maps every simulated register onto a
//! `std::sync::atomic::AtomicU64`, and [`run_protocol`] drives a protocol
//! to completion on the calling thread, performing each `Poll::Op` as a
//! sequentially-consistent load or store.
//!
//! Because the *same* state machines run in both worlds, every safety
//! property established by the exhaustive explorer and the simulator test
//! suite carries over to the native objects — the only difference is who
//! schedules the interleaving (the OS instead of an adversary).

//!
//! Native objects are also *recyclable*: [`NativeMemory::reset`] stores
//! 0 to every register without allocating, returning the object to its
//! initial state, and [`NativeRunner`] reuses one protocol-stack buffer
//! across operations — together the foundation of the `rtas-load`
//! sharded arena, which resolves sustained traffic on a fixed pool of
//! objects instead of constructing one per operation.

mod driver;

pub use driver::{run_protocol, NativeMemory, NativeRunner};

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_primitives::{RoleLeaderElect, TwoProcessLe};
    use rtas_sim::memory::Memory;
    use rtas_sim::protocol::ret;

    #[test]
    fn two_process_le_on_real_threads() {
        for round in 0..50 {
            let mut mem = Memory::new();
            let le = TwoProcessLe::new(&mut mem, "2le");
            let shared = NativeMemory::from_layout(&mem);
            let wins: Vec<u64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|role| {
                        let shared = &shared;
                        s.spawn(move || {
                            run_protocol(le.elect_as(role), shared, role, round * 2 + role as u64)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let winners = wins.iter().filter(|&&w| w == ret::WIN).count();
            assert_eq!(winners, 1, "round {round}: {wins:?}");
        }
    }

    #[test]
    fn reset_arena_resolves_correctly_across_100_epochs() {
        // One register block, built once, recycled by reset() — the
        // arena's reuse contract: every epoch must still elect exactly
        // one of the two concurrent participants.
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let shared = NativeMemory::from_layout(&mem);
        for epoch in 0..100u64 {
            let wins: Vec<u64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|role| {
                        let shared = &shared;
                        s.spawn(move || {
                            run_protocol(le.elect_as(role), shared, role, epoch * 2 + role as u64)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let winners = wins.iter().filter(|&&w| w == ret::WIN).count();
            assert_eq!(winners, 1, "epoch {epoch}: {wins:?}");
            shared.reset();
        }
    }
}
