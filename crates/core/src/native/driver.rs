//! Executing protocol state machines on real atomic registers.

use std::sync::atomic::{AtomicU64, Ordering};

use rtas_sim::executor::{SubPoll, SubRuntime};
use rtas_sim::memory::Memory;
use rtas_sim::op::MemOp;
use rtas_sim::protocol::{Ctx, Notes, Protocol};
use rtas_sim::rng::SplitMix64;
use rtas_sim::word::{ProcessId, RegId, Word};

/// A block of real atomic registers mirroring a simulator memory layout.
///
/// Register ids handed out by the simulator allocation (dense region ids
/// `0..n`) index directly into the atomic array. Lazily allocated
/// (`alloc_lazy`) regions are not supported natively — materializing
/// Θ(n³) atomics is exactly what the paper's space-efficient structures
/// avoid.
#[derive(Debug)]
pub struct NativeMemory {
    regs: Vec<AtomicU64>,
}

impl NativeMemory {
    /// Mirror the dense registers of a simulator [`Memory`].
    ///
    /// Build the object descriptors against a fresh `Memory` (which hands
    /// out the register ids and tracks the space accounting), then call
    /// this to obtain the real registers those descriptors will operate
    /// on.
    ///
    /// # Panics
    ///
    /// Panics if `layout` contains lazily allocated regions.
    pub fn from_layout(layout: &Memory) -> Self {
        assert_eq!(
            layout.declared_registers(),
            layout.dense_registers(),
            "native execution does not support lazy register regions"
        );
        let n = layout.dense_registers();
        let regs = (0..n).map(|_| AtomicU64::new(0)).collect();
        NativeMemory { regs }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the memory has no registers.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    #[inline]
    fn reg(&self, id: RegId) -> &AtomicU64 {
        assert!(!id.is_lazy(), "lazy register {id:?} in native execution");
        &self.regs[id.0 as usize]
    }

    /// Atomic read (sequentially consistent).
    #[inline]
    pub fn read(&self, id: RegId) -> Word {
        self.reg(id).load(Ordering::SeqCst)
    }

    /// Atomic write (sequentially consistent).
    #[inline]
    pub fn write(&self, id: RegId, value: Word) {
        self.reg(id).store(value, Ordering::SeqCst)
    }

    /// Reset every register to 0 — the object's initial state — without
    /// allocating.
    ///
    /// The paper's objects are one-shot, but their *memory* is not:
    /// every protocol assumes only that all registers start at 0, so
    /// zeroing the block returns the object to its pristine pre-first-op
    /// state and a fixed pool of objects can be recycled epoch after
    /// epoch instead of reallocated per resolution (see
    /// `rtas_load::arena`).
    ///
    /// Takes `&self` (the registers are atomics), but the caller must
    /// guarantee *quiescence*: no `elect`/`test_and_set` call may be in
    /// flight on this memory, and the reset must happen-before the next
    /// epoch's first operation (the load arena publishes it through a
    /// release/acquire epoch counter). A reset that races a live
    /// operation is not memory-unsafe, only semantically meaningless.
    pub fn reset(&self) {
        for reg in &self.regs {
            reg.store(0, Ordering::SeqCst);
        }
    }
}

/// A reusable per-thread protocol executor.
///
/// [`run_protocol`] builds a fresh [`SubRuntime`] (one heap-allocated
/// protocol stack) per call; a worker thread hammering an arena of
/// recycled objects instead keeps one `NativeRunner` alive and reuses
/// the runtime's stack buffer across operations via
/// [`SubRuntime::reset`], so the steady-state op path allocates only
/// the protocol state machines themselves.
#[derive(Debug, Default)]
pub struct NativeRunner {
    runtime: Option<SubRuntime>,
}

impl NativeRunner {
    /// A runner with no warm runtime yet (the first [`NativeRunner::run`]
    /// builds it).
    pub fn new() -> Self {
        NativeRunner { runtime: None }
    }

    /// Run `protocol` to completion on the calling thread, reusing this
    /// runner's runtime buffer.
    ///
    /// `participant` is the logical process id (used for splitter
    /// identity stamps); `seed` seeds the thread's private coin flips.
    /// Returns the protocol's result word.
    pub fn run(
        &mut self,
        protocol: Box<dyn Protocol>,
        memory: &NativeMemory,
        participant: usize,
        seed: u64,
    ) -> Word {
        let runtime = match &mut self.runtime {
            Some(rt) => {
                rt.reset(protocol);
                rt
            }
            slot => slot.insert(SubRuntime::new(protocol)),
        };
        let mut rng = SplitMix64::split(seed, participant as u64 ^ 0x5eed_f00d);
        let mut notes = Notes::default();
        loop {
            let poll = {
                let mut ctx = Ctx {
                    pid: ProcessId(participant),
                    rng: &mut rng,
                    notes: &mut notes,
                };
                runtime.advance(&mut ctx)
            };
            match poll {
                SubPoll::Finished(v) => return v,
                SubPoll::NeedsOp(op) => {
                    let input = match op {
                        MemOp::Read(r) => rtas_sim::protocol::Resume::Read(memory.read(r)),
                        MemOp::Write(r, v) => {
                            memory.write(r, v);
                            rtas_sim::protocol::Resume::Wrote
                        }
                    };
                    runtime.feed(input);
                }
            }
        }
    }
}

/// Run a protocol to completion on the calling thread.
///
/// One-shot convenience over [`NativeRunner::run`] — identical
/// semantics, fresh runtime per call.
pub fn run_protocol(
    protocol: Box<dyn Protocol>,
    memory: &NativeMemory,
    participant: usize,
    seed: u64,
) -> Word {
    NativeRunner::new().run(protocol, memory, participant, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::op::MemOp;
    use rtas_sim::protocol::{Poll, Resume};

    struct WriteThenRead {
        reg: RegId,
        state: u8,
    }

    impl Protocol for WriteThenRead {
        fn resume(&mut self, input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
            match self.state {
                0 => {
                    self.state = 1;
                    Poll::Op(MemOp::Write(self.reg, 41))
                }
                1 => {
                    self.state = 2;
                    Poll::Op(MemOp::Read(self.reg))
                }
                _ => Poll::Done(input.read_value() + 1),
            }
        }
    }

    #[test]
    fn runs_simple_protocol_on_atomics() {
        let mut layout = Memory::new();
        let reg = layout.alloc(1, "t").get(0);
        let shared = NativeMemory::from_layout(&layout);
        let out = run_protocol(Box::new(WriteThenRead { reg, state: 0 }), &shared, 0, 1);
        assert_eq!(out, 42);
        assert_eq!(shared.read(reg), 41);
        assert_eq!(shared.len(), 1);
        assert!(!shared.is_empty());
    }

    #[test]
    #[should_panic(expected = "lazy register regions")]
    fn lazy_layout_rejected() {
        let mut layout = Memory::new();
        let _ = layout.alloc_lazy(100, "big");
        let _ = NativeMemory::from_layout(&layout);
    }

    #[test]
    fn reset_zeroes_every_register() {
        let mut layout = Memory::new();
        let regs = layout.alloc(5, "t");
        let shared = NativeMemory::from_layout(&layout);
        for (i, reg) in regs.iter().enumerate() {
            shared.write(reg, i as Word + 10);
        }
        shared.reset();
        for reg in regs.iter() {
            assert_eq!(shared.read(reg), 0);
        }
    }

    #[test]
    fn runner_reuse_matches_fresh_runs() {
        let mut layout = Memory::new();
        let reg = layout.alloc(1, "t").get(0);
        let shared = NativeMemory::from_layout(&layout);
        let mut runner = NativeRunner::new();
        for epoch in 0..100 {
            let out = runner.run(Box::new(WriteThenRead { reg, state: 0 }), &shared, 0, epoch);
            assert_eq!(out, 42, "epoch {epoch}");
            assert_eq!(shared.read(reg), 41);
            shared.reset();
            assert_eq!(shared.read(reg), 0);
        }
    }
}
