//! A cheap monotonic clock for timestamping hot-path events.
//!
//! [`MonotonicClock`] is an [`Instant`] origin plus a nanosecond
//! readout: every [`MonotonicClock::now_ns`] call is one
//! `Instant::elapsed` (a `clock_gettime(CLOCK_MONOTONIC)` on Linux —
//! vDSO, no syscall trap, no allocation), returned as a plain `u64`
//! offset from the origin. A `u64` nanosecond count is what lock-free
//! consumers want: it stores in one atomic, compares without arithmetic
//! on `Instant`s, and serializes into binary trace records directly.
//!
//! Two subsystems share this type so their timestamps mean the same
//! thing *within* each: the `rtas-svc` namespace's lease deadlines and
//! the `rtas-obs` flight recorder's event stamps. Offsets from
//! *different* clocks are not comparable — each clock is its own epoch.

use std::time::Instant;

/// An origin instant plus nanosecond readout — see the [module
/// docs](self).
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now: the next [`MonotonicClock::now_ns`]
    /// reads close to zero.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the clock's origin. Saturates at
    /// `u64::MAX` (≈ 584 years), so the readout never panics.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The origin instant (for callers that need to convert back into
    /// `Instant` arithmetic).
    pub fn origin(&self) -> Instant {
        self.origin
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_monotone_and_advance() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now_ns();
        assert!(b >= a + 1_000_000, "2ms sleep advanced only {}ns", b - a);
        let c = clock.now_ns();
        assert!(c >= b);
    }

    #[test]
    fn origin_round_trips() {
        let clock = MonotonicClock::default();
        let elapsed = clock.origin().elapsed().as_nanos() as u64;
        assert!(clock.now_ns() >= elapsed);
    }
}
