//! # rtas — randomized test-and-set from atomic read/write registers
//!
//! A complete implementation of *On the time and space complexity of
//! randomized test-and-set* (Giakkoupis & Woelfel, PODC 2012): every
//! algorithm in the paper, runnable both on a simulated asynchronous
//! shared-memory machine with adversarial scheduling (for reproducing the
//! paper's complexity claims) and on real threads over
//! `std::sync::atomic` registers (for actual use).
//!
//! ## Quick start
//!
//! ```
//! use rtas::TestAndSet;
//!
//! let tas = TestAndSet::new(4); // up to 4 participants
//! let mut winners = 0;
//! std::thread::scope(|s| {
//!     let handles: Vec<_> = (0..4).map(|_| s.spawn(|| tas.test_and_set())).collect();
//!     winners = handles
//!         .into_iter()
//!         .map(|h| h.join().unwrap())
//!         .filter(|&already_set| !already_set)
//!         .count();
//! });
//! assert_eq!(winners, 1);
//! ```
//!
//! ## What is inside
//!
//! | Layer | Crate | Contents |
//! |-------|-------|----------|
//! | simulator | [`rtas_sim`] (re-exported as [`sim`]) | registers, adversaries, executor, exhaustive explorer |
//! | primitives | [`rtas_primitives`] (re-exported as [`primitives`]) | splitters, 2/3-process elections, TAS-from-LE |
//! | algorithms | [`rtas_algorithms`] (re-exported as [`algorithms`]) | Fig. 1 group election, O(log* k) LE, O(log log k) LE, RatRace ×2, Section 4 combiner |
//! | lower bounds | [`rtas_lowerbound`] (re-exported as [`lowerbound`]) | Section 5 recurrence + covering, Theorem 6.1 schedule search |
//! | native | [`native`] | the same protocols on real `AtomicU64`s |
//!
//! ## One-shot objects
//!
//! Like the paper's objects, [`TestAndSet`] and [`LeaderElection`] are
//! **one-shot**: each participant may call the operation once, and the
//! number of participants must not exceed the capacity given at
//! construction. They are `Sync` — share them by reference across
//! threads.

pub mod clock;
pub mod native;
pub mod once;
pub mod renaming;
pub mod sync;

pub use clock::MonotonicClock;
pub use once::RegisterOnce;
pub use renaming::Renaming;

pub use rtas_algorithms as algorithms;
pub use rtas_lowerbound as lowerbound;
pub use rtas_primitives as primitives;
pub use rtas_sim as sim;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use rtas_algorithms::{Combined, LogLogLe, LogStarLe, SpaceEfficientRatRace};
use rtas_primitives::LeaderElect;
use rtas_sim::memory::Memory;
use rtas_sim::protocol::ret;

use native::{NativeMemory, NativeRunner};

/// Which algorithm backs a [`TestAndSet`] / [`LeaderElection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Theorem 2.3: O(log* k) expected steps against the
    /// location-oblivious adversary, O(n) registers.
    LogStar,
    /// Theorem 2.4: O(log log k) expected steps against the R/W-oblivious
    /// adversary, O(n) registers.
    LogLog,
    /// Section 3.2: space-efficient RatRace — O(log k) expected steps
    /// against the adaptive adversary, Θ(n) registers.
    RatRace,
    /// Section 4 (default): the combiner of `LogStar` and `RatRace` —
    /// O(log* k) under weak adversaries *and* O(log k) under the adaptive
    /// one.
    Combined,
}

impl Backend {
    /// The backend's stable lowercase label — the vocabulary shared by
    /// every CLI flag and `BENCH_*.json` row label.
    pub fn label(self) -> &'static str {
        match self {
            Backend::LogStar => "logstar",
            Backend::LogLog => "loglog",
            Backend::RatRace => "ratrace",
            Backend::Combined => "combined",
        }
    }

    /// Parse a [`Backend::label`] back into a backend.
    pub fn parse(label: &str) -> Option<Backend> {
        match label {
            "logstar" => Some(Backend::LogStar),
            "loglog" => Some(Backend::LogLog),
            "ratrace" => Some(Backend::RatRace),
            "combined" => Some(Backend::Combined),
            _ => None,
        }
    }
}

struct Inner {
    le: Arc<dyn LeaderElect>,
    memory: NativeMemory,
    registers: u64,
    capacity: usize,
    issued: AtomicUsize,
    /// Reuse epoch, bumped by [`Inner::reset`]; mixed into the per-slot
    /// seeds so recycled objects draw fresh coin streams each epoch.
    epoch: AtomicU64,
    backend: Backend,
}

fn build(backend: Backend, capacity: usize) -> Inner {
    assert!(capacity >= 1, "capacity must be at least 1");
    let mut mem = Memory::new();
    let le: Arc<dyn LeaderElect> = match backend {
        Backend::LogStar => Arc::new(LogStarLe::new(&mut mem, capacity)),
        Backend::LogLog => Arc::new(LogLogLe::new(&mut mem, capacity)),
        Backend::RatRace => Arc::new(SpaceEfficientRatRace::new(&mut mem, capacity)),
        Backend::Combined => {
            let weak = Arc::new(LogStarLe::new(&mut mem, capacity));
            Arc::new(Combined::new(&mut mem, weak, capacity))
        }
    };
    let registers = mem.declared_registers();
    let memory = NativeMemory::from_layout(&mem);
    Inner {
        le,
        memory,
        registers,
        capacity,
        issued: AtomicUsize::new(0),
        epoch: AtomicU64::new(0),
        backend,
    }
}

impl Inner {
    fn elect_with(&self, runner: &mut NativeRunner) -> bool {
        let slot = self.issued.fetch_add(1, Ordering::Relaxed);
        assert!(
            slot < self.capacity,
            "more than {} participants entered a one-shot object",
            self.capacity
        );
        // Per-(slot, epoch) deterministic seeding keeps runs reproducible
        // while giving each participant an independent coin stream and
        // each reuse epoch fresh randomness.
        let seed = 0x7a5_u64
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(slot as u64)
            .wrapping_add(self.epoch.load(Ordering::Relaxed).wrapping_mul(0x9e37_79b9));
        runner.run(self.le.elect(), &self.memory, slot, seed) == ret::WIN
    }

    fn elect(&self) -> bool {
        self.elect_with(&mut NativeRunner::new())
    }

    fn reset(&self) {
        self.memory.reset();
        self.issued.store(0, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }
}

/// A one-shot leader election for real threads.
///
/// At most `capacity` participants may call [`LeaderElection::elect`],
/// each at most once; at most one call returns `true`, and if every
/// participating call runs to completion, exactly one does.
pub struct LeaderElection {
    inner: Inner,
}

impl std::fmt::Debug for LeaderElection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderElection")
            .field("backend", &self.inner.backend)
            .field("capacity", &self.inner.capacity)
            .field("registers", &self.inner.registers)
            .finish()
    }
}

impl LeaderElection {
    /// A leader election for up to `capacity` participants with the
    /// default [`Backend::Combined`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_backend(Backend::Combined, capacity)
    }

    /// Choose the algorithm explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_backend(backend: Backend, capacity: usize) -> Self {
        LeaderElection {
            inner: build(backend, capacity),
        }
    }

    /// Participate; returns `true` iff this caller is the unique winner.
    ///
    /// # Panics
    ///
    /// Panics if called more than `capacity` times on this object
    /// (between resets).
    pub fn elect(&self) -> bool {
        self.inner.elect()
    }

    /// [`LeaderElection::elect`] reusing a caller-owned
    /// [`NativeRunner`], so a worker thread performing many operations
    /// does not rebuild the protocol-stack buffer each time.
    pub fn elect_with(&self, runner: &mut NativeRunner) -> bool {
        self.inner.elect_with(runner)
    }

    /// Recycle the object: zero every register (no allocation) and
    /// re-open all `capacity` participation slots.
    ///
    /// The caller must guarantee quiescence — every `elect` call of the
    /// current epoch has returned, and the reset happens-before the next
    /// epoch's first call (see [`NativeMemory::reset`]). After a reset
    /// the object behaves exactly like a freshly constructed one, with
    /// fresh per-epoch coin streams.
    pub fn reset(&self) {
        self.inner.reset()
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.inner.backend
    }

    /// Maximum number of participants.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of atomic registers the object occupies.
    pub fn registers(&self) -> u64 {
        self.inner.registers
    }
}

/// A one-shot test-and-set bit for real threads.
///
/// The object stores a bit, initially 0. [`TestAndSet::test_and_set`]
/// sets it and returns the previous value: the unique *winner* observes
/// `false`, everyone else `true`. Built from [`LeaderElection`] plus one
/// register, exactly as in the paper (Preliminaries).
pub struct TestAndSet {
    le: LeaderElection,
    done: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for TestAndSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestAndSet")
            .field("backend", &self.le.backend())
            .field("capacity", &self.le.capacity())
            .finish()
    }
}

impl TestAndSet {
    /// A TAS for up to `capacity` participants with the default
    /// [`Backend::Combined`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_backend(Backend::Combined, capacity)
    }

    /// Choose the algorithm explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_backend(backend: Backend, capacity: usize) -> Self {
        TestAndSet {
            le: LeaderElection::with_backend(backend, capacity),
            done: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Set the bit, returning its previous value.
    ///
    /// `false` means this caller won (the bit was clear); `true` means it
    /// was already set (or being set by the eventual winner, which
    /// linearizes first). One call per participant.
    ///
    /// # Panics
    ///
    /// Panics if called more than `capacity` times on this object
    /// (between resets).
    pub fn test_and_set(&self) -> bool {
        self.test_and_set_with(&mut NativeRunner::new())
    }

    /// [`TestAndSet::test_and_set`] reusing a caller-owned
    /// [`NativeRunner`] (see [`LeaderElection::elect_with`]).
    pub fn test_and_set_with(&self, runner: &mut NativeRunner) -> bool {
        if self.done.load(Ordering::SeqCst) == 1 {
            return true;
        }
        if self.le.elect_with(runner) {
            return false;
        }
        self.done.store(1, Ordering::SeqCst);
        true
    }

    /// Recycle the object: clear the TAS bit, zero every register (no
    /// allocation), and re-open all `capacity` participation slots.
    /// Same quiescence contract as [`LeaderElection::reset`].
    pub fn reset(&self) {
        self.done.store(0, Ordering::SeqCst);
        self.le.reset();
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.le.backend()
    }

    /// Maximum number of participants.
    pub fn capacity(&self) -> usize {
        self.le.capacity()
    }

    /// Number of atomic registers the object occupies (including the
    /// extra TAS register).
    pub fn registers(&self) -> u64 {
        self.le.registers() + 1
    }
}

/// A uniform view of the recyclable one-shot arbitration objects —
/// the trait plumbing that lets a *keyed* service (one object per key,
/// recycled by epoch) hold [`TestAndSet`]s and [`LeaderElection`]s
/// behind one vtable.
///
/// The contract mirrors the objects themselves:
///
/// * [`Arbiter::try_acquire`] is one participation slot of the current
///   epoch — at most [`Arbiter::capacity`] calls per epoch, exactly one
///   of which returns `true` when all of them complete;
/// * [`Arbiter::reset`] recycles the object for the next epoch. The
///   caller owns the quiescence proof: every `try_acquire` of the
///   epoch has returned (the epoch is *resolved*) and the consumer has
///   acknowledged the resolution (*acked*), and the reset must
///   happen-before the next epoch's first acquisition — typically
///   discharged with a release/acquire epoch counter, as in the
///   `rtas-load` arena and the `rtas-svc` keyed namespaces.
pub trait Arbiter: Send + Sync {
    /// Take one participation slot of the current epoch; `true` iff
    /// this caller is the epoch's unique winner.
    ///
    /// # Panics
    ///
    /// Panics if called more than [`Arbiter::capacity`] times within
    /// one epoch — admission control is the caller's job.
    fn try_acquire(&self, runner: &mut NativeRunner) -> bool;

    /// Recycle for the next epoch (allocation-free; see the trait docs
    /// for the quiescence obligation).
    fn reset(&self);

    /// Participation slots per epoch.
    fn capacity(&self) -> usize;

    /// Atomic registers the object occupies.
    fn registers(&self) -> u64;

    /// The algorithm backing the object.
    fn backend(&self) -> Backend;
}

impl Arbiter for LeaderElection {
    fn try_acquire(&self, runner: &mut NativeRunner) -> bool {
        self.elect_with(runner)
    }

    fn reset(&self) {
        LeaderElection::reset(self)
    }

    fn capacity(&self) -> usize {
        LeaderElection::capacity(self)
    }

    fn registers(&self) -> u64 {
        LeaderElection::registers(self)
    }

    fn backend(&self) -> Backend {
        LeaderElection::backend(self)
    }
}

impl Arbiter for TestAndSet {
    fn try_acquire(&self, runner: &mut NativeRunner) -> bool {
        !self.test_and_set_with(runner)
    }

    fn reset(&self) {
        TestAndSet::reset(self)
    }

    fn capacity(&self) -> usize {
        TestAndSet::capacity(self)
    }

    fn registers(&self) -> u64 {
        TestAndSet::registers(self)
    }

    fn backend(&self) -> Backend {
        TestAndSet::backend(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [Backend; 4] = [
        Backend::LogStar,
        Backend::LogLog,
        Backend::RatRace,
        Backend::Combined,
    ];

    #[test]
    fn solo_elect_wins_every_backend() {
        for backend in BACKENDS {
            let le = LeaderElection::with_backend(backend, 4);
            assert!(le.elect(), "{backend:?}");
            assert_eq!(le.backend(), backend);
        }
    }

    #[test]
    fn solo_tas_returns_false_then_true() {
        let tas = TestAndSet::new(2);
        assert!(!tas.test_and_set());
        assert!(tas.test_and_set());
    }

    #[test]
    fn concurrent_unique_winner_all_backends() {
        for backend in BACKENDS {
            for round in 0..10 {
                let n = 8;
                let le = LeaderElection::with_backend(backend, n);
                let wins: Vec<bool> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..n).map(|_| s.spawn(|| le.elect())).collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                let winners = wins.iter().filter(|&&w| w).count();
                assert_eq!(winners, 1, "{backend:?} round {round}: {wins:?}");
            }
        }
    }

    #[test]
    fn concurrent_tas_exactly_one_false() {
        for round in 0..10 {
            let n = 8;
            let tas = TestAndSet::with_backend(Backend::RatRace, n);
            let outs: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(|| tas.test_and_set())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let winners = outs.iter().filter(|&&w| !w).count();
            assert_eq!(winners, 1, "round {round}: {outs:?}");
        }
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn over_capacity_panics() {
        let le = LeaderElection::new(1);
        let _ = le.elect();
        let _ = le.elect();
    }

    #[test]
    fn registers_scale_linearly() {
        let small = LeaderElection::with_backend(Backend::RatRace, 64);
        let large = LeaderElection::with_backend(Backend::RatRace, 512);
        assert!(large.registers() < small.registers() * 16);
        assert!(large.registers() > small.registers());
        assert_eq!(small.capacity(), 64);
    }

    #[test]
    fn debug_formats_are_informative() {
        let le = LeaderElection::new(2);
        assert!(format!("{le:?}").contains("Combined"));
        let tas = TestAndSet::new(2);
        assert!(format!("{tas:?}").contains("capacity"));
    }

    #[test]
    fn tas_registers_one_more_than_le() {
        let le = LeaderElection::with_backend(Backend::LogStar, 16);
        let tas = TestAndSet::with_backend(Backend::LogStar, 16);
        assert_eq!(tas.registers(), le.registers() + 1);
    }

    #[test]
    fn reset_reopens_one_shot_objects_across_100_epochs() {
        for backend in BACKENDS {
            let le = LeaderElection::with_backend(backend, 2);
            let tas = TestAndSet::with_backend(backend, 2);
            let mut runner = NativeRunner::new();
            for epoch in 0..100 {
                assert!(le.elect_with(&mut runner), "{backend:?} epoch {epoch}");
                assert!(!le.elect_with(&mut runner), "{backend:?} epoch {epoch}");
                assert!(!tas.test_and_set_with(&mut runner));
                assert!(tas.test_and_set_with(&mut runner));
                le.reset();
                tas.reset();
            }
        }
    }

    #[test]
    fn reset_epochs_with_concurrency() {
        let n = 4;
        let tas = TestAndSet::with_backend(Backend::RatRace, n);
        for epoch in 0..20 {
            let outs: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n).map(|_| s.spawn(|| tas.test_and_set())).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                outs.iter().filter(|&&set| !set).count(),
                1,
                "epoch {epoch}: {outs:?}"
            );
            tas.reset();
        }
    }

    #[test]
    fn arbiter_trait_unifies_both_objects_across_epochs() {
        let objects: [Box<dyn Arbiter>; 2] = [
            Box::new(LeaderElection::with_backend(Backend::LogStar, 2)),
            Box::new(TestAndSet::with_backend(Backend::LogStar, 2)),
        ];
        let mut runner = NativeRunner::new();
        for arbiter in &objects {
            assert_eq!(arbiter.capacity(), 2);
            assert_eq!(arbiter.backend(), Backend::LogStar);
            assert!(arbiter.registers() > 0);
            for epoch in 0..20 {
                assert!(arbiter.try_acquire(&mut runner), "epoch {epoch}");
                assert!(!arbiter.try_acquire(&mut runner), "epoch {epoch}");
                arbiter.reset();
            }
        }
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn over_capacity_still_panics_after_reset() {
        let le = LeaderElection::new(1);
        let _ = le.elect();
        le.reset();
        let _ = le.elect();
        let _ = le.elect();
    }
}
