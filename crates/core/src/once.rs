//! A `std::sync::Once`-style convenience built on the paper's TAS.
//!
//! [`RegisterOnce`] runs a closure exactly once among up to `capacity`
//! racing callers, using only atomic read/write registers underneath —
//! a drop-in demonstration that the paper's object supports the classic
//! "one-time initialization" idiom without compare-and-swap.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::{Backend, TestAndSet};

/// One-time execution cell backed by register-based test-and-set.
///
/// Unlike `std::sync::Once` (which may use CAS/futex), the election here
/// is decided purely by atomic reads and writes. Each participant calls
/// [`RegisterOnce::call_once`] at most once.
pub struct RegisterOnce {
    tas: TestAndSet,
    done: AtomicBool,
}

impl std::fmt::Debug for RegisterOnce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisterOnce")
            .field("capacity", &self.tas.capacity())
            .field("completed", &self.done.load(Ordering::Relaxed))
            .finish()
    }
}

impl RegisterOnce {
    /// A cell for up to `capacity` racing participants.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_backend(Backend::Combined, capacity)
    }

    /// Choose the election algorithm explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_backend(backend: Backend, capacity: usize) -> Self {
        RegisterOnce {
            tas: TestAndSet::with_backend(backend, capacity),
            done: AtomicBool::new(false),
        }
    }

    /// Run `f` if this caller wins the race; in all cases, return only
    /// after `f` has completed (in some thread).
    ///
    /// Returns `true` iff this caller executed `f`.
    ///
    /// # Panics
    ///
    /// Panics if called more than `capacity` times, or propagates a panic
    /// from `f` in the winning thread (other threads would then spin; do
    /// not rely on `RegisterOnce` with panicking initializers).
    pub fn call_once(&self, f: impl FnOnce()) -> bool {
        if self.done.load(Ordering::Acquire) {
            return false;
        }
        if !self.tas.test_and_set() {
            f();
            self.done.store(true, Ordering::Release);
            true
        } else {
            while !self.done.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            false
        }
    }

    /// Whether the closure has completed.
    pub fn is_completed(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_exactly_once_under_contention() {
        for round in 0..10 {
            let n = 8;
            let once = RegisterOnce::new(n);
            let counter = AtomicUsize::new(0);
            let ran: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|_| {
                        let once = &once;
                        let counter = &counter;
                        s.spawn(move || {
                            once.call_once(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(counter.load(Ordering::SeqCst), 1, "round {round}");
            assert_eq!(ran.iter().filter(|&&r| r).count(), 1, "round {round}");
            assert!(once.is_completed());
        }
    }

    #[test]
    fn everyone_observes_completion_before_returning() {
        let n = 6;
        let once = RegisterOnce::with_backend(Backend::RatRace, n);
        let value = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..n {
                let once = &once;
                let value = &value;
                s.spawn(move || {
                    once.call_once(|| value.store(42, Ordering::SeqCst));
                    // Every caller must see the initialized value.
                    assert_eq!(value.load(Ordering::SeqCst), 42);
                });
            }
        });
    }

    #[test]
    fn solo_caller_runs_it() {
        let once = RegisterOnce::new(2);
        assert!(once.call_once(|| {}));
        assert!(once.is_completed());
        assert!(!once.call_once(|| panic!("must not run twice")));
    }

    #[test]
    fn debug_format() {
        let once = RegisterOnce::new(3);
        let s = format!("{once:?}");
        assert!(s.contains("capacity: 3"));
    }
}
