//! Tight one-shot renaming from a chain of test-and-set objects.
//!
//! The paper's introduction names renaming (Eberly, Higham &
//! Warpechowska-Gruca) as a core application of TAS. [`Renaming`] gives
//! up to `n` participants distinct names in `0..n` ("tight" name space):
//! each participant walks the array of TAS objects and keeps the index of
//! the first one it wins. A participant loses `TAS_j` only to a distinct
//! winner, so after at most `n` attempts it must win one — the acquired
//! names are unique and at most `n` are ever needed.
//!
//! Step complexity: each TAS costs the backend's election complexity, and
//! a participant visits at most `n` slots (at most `k` in contention-`k`
//! executions, since only winners block slots).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{Backend, TestAndSet};

/// A one-shot renaming object: distinct names in `0..capacity`.
pub struct Renaming {
    slots: Vec<TestAndSet>,
    issued: AtomicUsize,
}

impl std::fmt::Debug for Renaming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Renaming")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl Renaming {
    /// A renaming object for up to `capacity` participants, with the
    /// default [`Backend::Combined`] elections.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_backend(Backend::Combined, capacity)
    }

    /// Choose the election backend for the underlying TAS objects.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_backend(backend: Backend, capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        Renaming {
            slots: (0..capacity)
                .map(|_| TestAndSet::with_backend(backend, capacity))
                .collect(),
            issued: AtomicUsize::new(0),
        }
    }

    /// Acquire a distinct name in `0..capacity`.
    ///
    /// One call per participant; at most `capacity` calls total.
    ///
    /// # Panics
    ///
    /// Panics if called more than `capacity` times.
    pub fn acquire(&self) -> usize {
        let issued = self.issued.fetch_add(1, Ordering::Relaxed);
        assert!(
            issued < self.slots.len(),
            "more than {} participants entered a one-shot renaming",
            self.slots.len()
        );
        for (name, slot) in self.slots.iter().enumerate() {
            if !slot.test_and_set() {
                return name;
            }
        }
        unreachable!(
            "pigeonhole: {} slots, {} participants",
            self.slots.len(),
            issued + 1
        )
    }

    /// Maximum number of participants (= size of the name space).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_gets_name_zero() {
        let r = Renaming::new(4);
        assert_eq!(r.acquire(), 0);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn sequential_names_are_increasing() {
        let r = Renaming::new(4);
        assert_eq!(r.acquire(), 0);
        assert_eq!(r.acquire(), 1);
        assert_eq!(r.acquire(), 2);
        assert_eq!(r.acquire(), 3);
    }

    #[test]
    fn concurrent_names_are_distinct_and_tight() {
        for backend in [Backend::RatRace, Backend::Combined] {
            for round in 0..8 {
                let n = 8;
                let r = Renaming::with_backend(backend, n);
                let mut names: Vec<usize> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..n).map(|_| s.spawn(|| r.acquire())).collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                names.sort_unstable();
                assert_eq!(
                    names,
                    (0..n).collect::<Vec<_>>(),
                    "{backend:?} round {round}: name space not tight"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one-shot renaming")]
    fn over_capacity_panics() {
        let r = Renaming::new(1);
        let _ = r.acquire();
        let _ = r.acquire();
    }
}
