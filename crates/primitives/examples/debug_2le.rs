use rtas_primitives::{RoleLeaderElect, TwoProcessLe};
use rtas_sim::adversary::RandomSchedule;
use rtas_sim::executor::Execution;
use rtas_sim::history::RecordMode;
use rtas_sim::memory::Memory;
use rtas_sim::protocol::ret;

fn main() {
    for seed in 0..2000u64 {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let protos = vec![le.elect_as(0), le.elect_as(1)];
        let res = Execution::new(mem, protos, seed)
            .with_recording(RecordMode::Full)
            .run(&mut RandomSchedule::new(seed * 7));
        let winners = res.processes_with_outcome(ret::WIN).len();
        if res.all_finished() && winners != 1 {
            println!("VIOLATION seed={seed} outcomes={:?}", res.outcomes());
            for e in res.history().events() {
                let v = e.value;
                let (r, c, k) = (v >> 2, (v >> 1) & 1, v & 1);
                println!(
                    "  step {:2} {} {:?} reg={:?} val={} (round={} coin={} claim={})",
                    e.step, e.pid, e.kind, e.reg, v, r, c, k
                );
            }
            return;
        }
    }
    println!("no violation found in 2000 seeds");
}
