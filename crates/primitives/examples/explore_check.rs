use rtas_primitives::{RoleLeaderElect, TwoProcessLe};
use rtas_sim::explore::{explore, ExploreConfig};
use rtas_sim::memory::Memory;
use rtas_sim::protocol::ret;

fn main() {
    for max_steps in [12u64, 14, 16, 18, 20] {
        let mut violations = 0u64;
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let le = TwoProcessLe::new(&mut mem, "2le");
                (mem, vec![le.elect_as(0), le.elect_as(1)])
            },
            ExploreConfig {
                max_steps,
                max_paths: u64::MAX,
            },
            |e| {
                let winners = e.with_outcome(ret::WIN).len();
                if winners > 1 || (e.all_finished() && winners != 1) {
                    violations += 1;
                }
            },
        );
        println!(
            "max_steps={max_steps}: paths={} truncated={} violations={violations}",
            stats.paths, stats.truncated_paths
        );
    }
}
