//! # rtas-primitives — the paper's building blocks
//!
//! Shared-object primitives used by every leader-election algorithm in
//! Giakkoupis & Woelfel (PODC 2012), each implemented from O(1) atomic
//! registers on the [`rtas_sim`] machine:
//!
//! * [`splitter`] — the deterministic splitter of Moir & Anderson: of `k`
//!   callers at most one gets `S` (stop), at most `k−1` get `L`, at most
//!   `k−1` get `R`; a solo caller gets `S`.
//! * [`rsplitter`] — the randomized splitter of Attiya et al.: at most one
//!   `S`, a solo caller gets `S`, and a non-`S` result is an independent
//!   fair coin in `{L, R}`.
//! * [`two_process`] — a randomized 2-process leader election with constant
//!   expected step complexity against the adaptive adversary (the role the
//!   paper assigns to Tromp–Vitányi 2002; see DESIGN.md §3 for the
//!   substitution note). Safety is verified exhaustively in the tests.
//! * [`three_process`] — the 3-process leader election used at RatRace tree
//!   nodes, built from two 2-process elections.
//! * [`tas_from_le`] — the standard construction of a linearizable one-shot
//!   test-and-set from a leader-election object plus one extra register.
//!
//! All objects follow the same pattern: a small, copyable *descriptor*
//! holds the register ids (allocated from a [`rtas_sim::memory::Memory`]),
//! and a method returns a boxed [`rtas_sim::protocol::Protocol`] that one
//! process runs to perform one operation.
//!
//! ```
//! use rtas_primitives::{RoleLeaderElect, TwoProcessLe};
//! use rtas_sim::prelude::*;
//! use rtas_sim::protocol::ret;
//!
//! let mut mem = Memory::new();
//! let le = TwoProcessLe::new(&mut mem, "demo");
//! let protos = vec![le.elect_as(0), le.elect_as(1)];
//! let res = Execution::new(mem, protos, 42).run(&mut RandomSchedule::new(7));
//! assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
//! ```

pub mod object;
pub mod rsplitter;
pub mod splitter;
pub mod tas_from_le;
pub mod three_process;
pub mod two_process;

pub use object::{LeaderElect, RoleLeaderElect, SplitterObject};
pub use rsplitter::RSplitter;
pub use splitter::Splitter;
pub use tas_from_le::TasFromLe;
pub use three_process::ThreeProcessLe;
pub use two_process::TwoProcessLe;
