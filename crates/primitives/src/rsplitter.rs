//! The randomized splitter of Attiya, Kuhn, Plaxton, Wattenhofer &
//! Wattenhofer (Distributed Computing 2006), as used by RatRace's primary
//! tree.
//!
//! Same register structure as the deterministic splitter, but a caller that
//! does not win returns `L` or `R` **independently with probability 1/2**
//! (so it is possible that all callers return the same direction). The two
//! guarantees that remain are: at most one `S`, and a solo caller gets `S`.
//! These weaker guarantees are what make the RatRace tree analysis a
//! balls-into-bins argument (Claim 3.2).

use rtas_sim::memory::Memory;
use rtas_sim::op::MemOp;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::{RegId, Word};

use crate::object::SplitterObject;

/// Descriptor of one randomized splitter (2 registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RSplitter {
    x: RegId,
    y: RegId,
}

impl RSplitter {
    /// Allocate a randomized splitter's registers under the given label.
    pub fn new(memory: &mut Memory, label: &str) -> Self {
        let regs = memory.alloc(2, label);
        RSplitter {
            x: regs.get(0),
            y: regs.get(1),
        }
    }

    /// Build from a pre-allocated 2-register range (lazy structures).
    pub fn from_range(range: rtas_sim::memory::RegRange) -> Self {
        assert!(range.len() >= 2, "rsplitter needs 2 registers");
        RSplitter {
            x: range.get(0),
            y: range.get(1),
        }
    }

    /// Number of registers a randomized splitter occupies.
    pub const REGISTERS: u64 = 2;
}

impl SplitterObject for RSplitter {
    fn split(&self) -> Box<dyn Protocol> {
        Box::new(RSplitProtocol {
            sp: *self,
            state: State::Init,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Init,
    WroteX,
    ReadY,
    WroteY,
    ReadX,
}

#[derive(Debug)]
struct RSplitProtocol {
    sp: RSplitter,
    state: State,
}

fn random_direction(ctx: &mut Ctx<'_>) -> Word {
    if ctx.rng.coin() {
        ret::SPLIT_LEFT
    } else {
        ret::SPLIT_RIGHT
    }
}

impl Protocol for RSplitProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        let me = ctx.pid.index() as Word + 1;
        match self.state {
            State::Init => {
                self.state = State::WroteX;
                Poll::Op(MemOp::Write(self.sp.x, me))
            }
            State::WroteX => {
                self.state = State::ReadY;
                Poll::Op(MemOp::Read(self.sp.y))
            }
            State::ReadY => {
                if input.read_value() != 0 {
                    return Poll::Done(random_direction(ctx));
                }
                self.state = State::WroteY;
                Poll::Op(MemOp::Write(self.sp.y, 1))
            }
            State::WroteY => {
                self.state = State::ReadX;
                Poll::Op(MemOp::Read(self.sp.x))
            }
            State::ReadX => {
                if input.read_value() == me {
                    Poll::Done(ret::SPLIT_STOP)
                } else {
                    Poll::Done(random_direction(ctx))
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "rsplitter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::explore::{explore, ExploreConfig};
    use rtas_sim::word::ProcessId;

    fn run_k(k: usize, seed: u64) -> Vec<Word> {
        let mut mem = Memory::new();
        let sp = RSplitter::new(&mut mem, "rsp");
        let protos = (0..k).map(|_| sp.split()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed));
        assert!(res.all_finished());
        (0..k).map(|i| res.outcome(ProcessId(i)).unwrap()).collect()
    }

    #[test]
    fn solo_caller_stops() {
        assert_eq!(run_k(1, 3), vec![ret::SPLIT_STOP]);
    }

    #[test]
    fn at_most_one_stop_random_schedules() {
        for k in [2usize, 3, 8] {
            for seed in 0..60 {
                let outs = run_k(k, seed);
                let stops = outs.iter().filter(|&&o| o == ret::SPLIT_STOP).count();
                assert!(stops <= 1);
            }
        }
    }

    #[test]
    fn exhaustive_two_processes_at_most_one_stop() {
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let sp = RSplitter::new(&mut mem, "rsp");
                (mem, (0..2).map(|_| sp.split()).collect())
            },
            ExploreConfig::default(),
            |e| {
                assert!(e.all_finished());
                let stops = e.with_outcome(ret::SPLIT_STOP).len();
                assert!(stops <= 1);
            },
        );
        assert_eq!(stats.truncated_paths, 0);
        assert!(stats.paths >= 6);
    }

    #[test]
    fn exhaustive_three_processes_at_most_one_stop() {
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let sp = RSplitter::new(&mut mem, "rsp");
                (mem, (0..3).map(|_| sp.split()).collect())
            },
            ExploreConfig::default(),
            |e| {
                assert!(e.all_finished());
                assert!(e.with_outcome(ret::SPLIT_STOP).len() <= 1);
            },
        );
        assert_eq!(stats.truncated_paths, 0);
    }

    #[test]
    fn losers_directions_are_roughly_fair() {
        // Run many 2-process rounds in lockstep; the non-winner's direction
        // must be close to a fair coin.
        let mut lefts = 0u32;
        let mut total = 0u32;
        for seed in 0..2000 {
            let mut mem = Memory::new();
            let sp = RSplitter::new(&mut mem, "rsp");
            let protos = (0..2).map(|_| sp.split()).collect();
            let res = Execution::new(mem, protos, seed).run(&mut RoundRobin::new(2));
            for i in 0..2 {
                match res.outcome(ProcessId(i)).unwrap() {
                    x if x == ret::SPLIT_LEFT => {
                        lefts += 1;
                        total += 1;
                    }
                    x if x == ret::SPLIT_RIGHT => total += 1,
                    _ => {}
                }
            }
        }
        assert!(total > 0);
        let frac = lefts as f64 / total as f64;
        assert!((0.42..0.58).contains(&frac), "L fraction {frac}");
    }

    #[test]
    fn register_accounting() {
        let mut mem = Memory::new();
        let _sp = RSplitter::new(&mut mem, "rsp");
        assert_eq!(mem.declared_registers(), RSplitter::REGISTERS);
    }
}
