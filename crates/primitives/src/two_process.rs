//! Randomized 2-process leader election from two atomic registers.
//!
//! This object fills the role of the Tromp–Vitányi (2002) 2-process
//! test-and-set that the paper uses as a black box: a randomized,
//! wait-free leader election for two processes with **constant expected
//! step complexity against the adaptive adversary** (see DESIGN.md §3 for
//! the substitution note).
//!
//! ## The claim-round algorithm
//!
//! Each role `i ∈ {0,1}` owns a single-writer register `R[i]` holding a
//! triple `(round, coin, claim)`, initially `(0, 0, NO)`. A process at
//! round `r` repeatedly:
//!
//! 1. flips a fresh coin `c` and **announces** `R[me] := (r, c, NO)`;
//! 2. reads the peer register `(r', c', k')`:
//!    * peer **claim at round `r' ≥ r`** → lose;
//!    * peer ahead (`r' > r`, no claim) → set `r := r'`, re-announce;
//!    * peer behind (`r' < r`) → **claim**: write `R[me] := (r, c, CLAIM)`
//!      and *confirm* with a re-read (step 3);
//!    * same round, equal coins → advance to `r + 1`, re-announce;
//!    * same round, differing coins → coin 1 advances to `r + 1` (it will
//!      claim from there); coin 0 loses — unless this process itself
//!      claimed at round `r` earlier, in which case the peer's
//!      announcement may be the frozen last write of a process that
//!      already lost to that claim, so it advances instead;
//! 3. confirm re-read `(r₂, c₂, k₂)` after a claim:
//!    * peer claim at round `r₂ ≥ r` → lose;
//!    * peer still behind (`r₂ < r`) → **win**;
//!    * peer at the same round with coin 0 against our coin 1 → **win**
//!      (any value of ours the peer can still read makes it lose);
//!    * otherwise (same round equal coins, same round our coin 0, or peer
//!      ahead) → *withdraw*: re-announce with a fresh coin at round
//!      `max(r, r₂)` — exactly, never beyond, so a peer claim at that
//!      round is still caught by the next read (skipping a round past a
//!      live claim is how two winners could arise).
//!
//! Claims dominate *by round*: any visible peer claim at a round not
//! below yours is fatal. Two claims at the same round are impossible (a
//! happens-before cycle), so same-round claim comparisons never arise, and
//! a claim at a strictly lower round than yours belongs to a peer that
//! already lost to you — the confirm's `r₂ < r` rule wins over it soundly.
//!
//! Safety — never two winners; exactly one winner in every crash-free
//! complete execution — is machine-verified in the tests by exhaustively
//! exploring *all* schedules and coin outcomes up to a step budget
//! ([`rtas_sim::explore`]), and the expected step count is measured to be
//! a small constant under adaptive, lockstep, and random schedules.

use rtas_sim::memory::Memory;
use rtas_sim::op::MemOp;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::{RegId, Word};

use crate::object::RoleLeaderElect;

/// Claim flag values inside the packed register.
const NO: Word = 0;
const CLAIM: Word = 1;

/// Packed register value: `(round << 2) | (coin << 1) | claim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    round: Word,
    coin: Word,
    claim: Word,
}

impl Slot {
    fn pack(self) -> Word {
        (self.round << 2) | (self.coin << 1) | self.claim
    }

    fn unpack(v: Word) -> Slot {
        Slot {
            round: v >> 2,
            coin: (v >> 1) & 1,
            claim: v & 1,
        }
    }
}

/// Descriptor of one 2-process leader-election object (2 registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoProcessLe {
    regs: [RegId; 2],
}

impl TwoProcessLe {
    /// Allocate the object's registers under the given label.
    pub fn new(memory: &mut Memory, label: &str) -> Self {
        let r = memory.alloc(2, label);
        TwoProcessLe {
            regs: [r.get(0), r.get(1)],
        }
    }

    /// Build from a pre-allocated 2-register range (lazy structures).
    pub fn from_range(range: rtas_sim::memory::RegRange) -> Self {
        assert!(range.len() >= 2, "2-process LE needs 2 registers");
        TwoProcessLe {
            regs: [range.get(0), range.get(1)],
        }
    }

    /// Number of registers the object occupies.
    pub const REGISTERS: u64 = 2;
}

impl RoleLeaderElect for TwoProcessLe {
    fn roles(&self) -> usize {
        2
    }

    fn elect_as(&self, role: usize) -> Box<dyn Protocol> {
        assert!(role < 2, "2-process LE has roles 0 and 1, got {role}");
        Box::new(TwoProcessProtocol {
            le: *self,
            role,
            round: 1,
            coin: 0,
            state: State::Announce,
            claimed_round: None,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Flip a coin and write the announcement.
    Announce,
    /// Announcement written; issue the peer read.
    ReadPeer,
    /// Peer read returned; decide, possibly write a claim.
    DecideAfterRead,
    /// Claim written; issue the confirm read.
    Confirm,
    /// Confirm read returned; decide.
    DecideAfterConfirm,
}

#[derive(Debug)]
struct TwoProcessProtocol {
    le: TwoProcessLe,
    role: usize,
    round: Word,
    coin: Word,
    state: State,
    /// Round of this process's most recent claim (withdrawn or not).
    /// Guards the tiebreak: a frozen peer announcement with the winning
    /// coin may belong to a victim of that claim, so it must not beat us.
    claimed_round: Option<Word>,
}

impl TwoProcessProtocol {
    fn my_reg(&self) -> RegId {
        self.le.regs[self.role]
    }

    fn peer_reg(&self) -> RegId {
        self.le.regs[1 - self.role]
    }

    fn announce(&mut self, ctx: &mut Ctx<'_>) -> Poll {
        self.coin = ctx.rng.coin() as Word;
        self.state = State::ReadPeer;
        let v = Slot {
            round: self.round,
            coin: self.coin,
            claim: NO,
        }
        .pack();
        Poll::Op(MemOp::Write(self.my_reg(), v))
    }

    fn claim(&mut self) -> Poll {
        self.claimed_round = Some(self.round);
        self.state = State::Confirm;
        let v = Slot {
            round: self.round,
            coin: self.coin,
            claim: CLAIM,
        }
        .pack();
        Poll::Op(MemOp::Write(self.my_reg(), v))
    }
}

impl Protocol for TwoProcessProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        match self.state {
            State::Announce => self.announce(ctx),
            State::ReadPeer => {
                self.state = State::DecideAfterRead;
                Poll::Op(MemOp::Read(self.peer_reg()))
            }
            State::DecideAfterRead => {
                let peer = Slot::unpack(input.read_value());
                if peer.claim == CLAIM && peer.round >= self.round {
                    return Poll::Done(ret::LOSE);
                }
                if peer.round > self.round {
                    // Peer ahead without a (relevant) claim: catch up.
                    self.round = peer.round;
                    return self.announce(ctx);
                }
                if peer.round < self.round {
                    // Peer behind (or holding a stale claim of a loser):
                    // claim the win and confirm.
                    return self.claim();
                }
                // Same round; a same-round peer claim was handled above.
                if peer.coin == self.coin {
                    self.round += 1;
                    return self.announce(ctx);
                }
                if self.coin == 0 {
                    if self.claimed_round == Some(self.round) {
                        // We withdrew a claim at this round; the peer's
                        // announcement may be frozen by that claim (it lost
                        // upon seeing it), so the tiebreak does not apply —
                        // move on instead of losing to a ghost.
                        self.round += 1;
                        return self.announce(ctx);
                    }
                    return Poll::Done(ret::LOSE);
                }
                // Tiebreak winner: advance instead of claiming; the peer
                // either already lost or will lose on its next read.
                self.round += 1;
                self.announce(ctx)
            }
            State::Confirm => {
                match input {
                    Resume::Wrote => {}
                    other => panic!("unexpected resume {other:?} in Confirm"),
                }
                self.state = State::DecideAfterConfirm;
                Poll::Op(MemOp::Read(self.peer_reg()))
            }
            State::DecideAfterConfirm => {
                let peer = Slot::unpack(input.read_value());
                if peer.claim == CLAIM && peer.round >= self.round {
                    return Poll::Done(ret::LOSE);
                }
                if peer.round < self.round {
                    return Poll::Done(ret::WIN);
                }
                if peer.round == self.round && self.coin == 1 && peer.coin == 0 {
                    // The peer can only ever observe our round-r state
                    // (announce or claim), and loses to either.
                    return Poll::Done(ret::WIN);
                }
                // Ambiguous: withdraw the claim by re-announcing at the
                // highest round seen — never one past it, so a peer claim
                // at that round is still detected by the next read.
                self.round = self.round.max(peer.round);
                self.announce(ctx)
            }
        }
    }

    fn name(&self) -> &'static str {
        "two-process-le"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{AdversaryClass, FnAdversary, RandomSchedule, RoundRobin, View};
    use rtas_sim::executor::Execution;
    use rtas_sim::explore::{explore, ExploreConfig, Explored};
    use rtas_sim::word::ProcessId;

    fn system() -> (Memory, Vec<Box<dyn Protocol>>) {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        (mem, vec![le.elect_as(0), le.elect_as(1)])
    }

    fn check_safety(e: &Explored) {
        let winners = e.with_outcome(ret::WIN).len();
        assert!(winners <= 1, "two winners: {:?}", e.outcomes);
        if e.all_finished() {
            assert_eq!(
                winners, 1,
                "complete execution without a winner: {:?}",
                e.outcomes
            );
        }
    }

    #[test]
    fn slot_packing_roundtrip() {
        for round in [0u64, 1, 2, 100] {
            for coin in [0u64, 1] {
                for claim in [NO, CLAIM] {
                    let s = Slot { round, coin, claim };
                    assert_eq!(Slot::unpack(s.pack()), s);
                }
            }
        }
        assert_eq!(
            Slot::unpack(0),
            Slot {
                round: 0,
                coin: 0,
                claim: NO
            }
        );
    }

    #[test]
    fn solo_run_wins_in_four_steps() {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let res = Execution::new(mem, vec![le.elect_as(0)], 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
        assert_eq!(res.steps().of(ProcessId(0)), 4);
    }

    #[test]
    fn solo_role_one_also_wins() {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let res = Execution::new(mem, vec![le.elect_as(1)], 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN));
    }

    #[test]
    fn random_schedules_have_unique_winner() {
        for seed in 0..300 {
            let (mem, protos) = system();
            let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 7));
            assert!(res.all_finished(), "seed {seed}");
            let winners = res.processes_with_outcome(ret::WIN).len();
            assert_eq!(winners, 1, "seed {seed}: {:?}", res.outcomes());
        }
    }

    #[test]
    fn exhaustive_safety_all_schedules_and_coins() {
        // Path counts grow ~5× per two extra steps, so the budget trades
        // depth for runtime. Both safety bugs found during development
        // manifested within 14 steps; 16 (debug) / 18 (release) gives
        // comfortable margin while keeping the test fast.
        let max_steps = if cfg!(debug_assertions) { 16 } else { 18 };
        let stats = explore(
            system,
            ExploreConfig {
                max_steps,
                max_paths: 40_000_000,
            },
            check_safety,
        );
        assert!(stats.paths > 1000, "explored {} paths", stats.paths);
    }

    #[test]
    fn expected_steps_constant_under_random_schedules() {
        let mut total = 0u64;
        let trials = 400;
        for seed in 0..trials {
            let (mem, protos) = system();
            let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed + 1));
            total += res.steps().max();
        }
        let mean = total as f64 / trials as f64;
        assert!(mean < 14.0, "mean max steps {mean}");
    }

    #[test]
    fn lockstep_round_robin_terminates_quickly() {
        let mut total = 0u64;
        let trials = 400;
        for seed in 0..trials {
            let (mem, protos) = system();
            let res = Execution::new(mem, protos, seed).run(&mut RoundRobin::new(2));
            assert!(res.all_finished());
            assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
            total += res.steps().max();
        }
        let mean = total as f64 / trials as f64;
        assert!(mean < 18.0, "mean max steps {mean}");
    }

    #[test]
    fn adaptive_greedy_laggard_adversary_terminates() {
        // Adaptive strategy: always schedule the process with fewer steps
        // (keeps them in lockstep as tightly as possible).
        let mut total = 0u64;
        let trials = 300;
        for seed in 0..trials {
            let (mem, protos) = system();
            let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
                view.active().into_iter().min_by_key(|&p| view.steps_of(p))
            });
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            assert!(res.all_finished());
            assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
            total += res.steps().max();
        }
        let mean = total as f64 / trials as f64;
        assert!(mean < 22.0, "mean max steps {mean}");
    }

    #[test]
    fn one_crashed_peer_does_not_block_winner() {
        // P1 takes two steps then is never scheduled again; P0 must still
        // finish (wait-freedom) without producing a second winner.
        for seed in 0..50 {
            let (mem, protos) = system();
            let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
                if view.steps_of(ProcessId(1)) < 2 && view.is_active(ProcessId(1)) {
                    Some(ProcessId(1))
                } else if view.is_active(ProcessId(0)) {
                    Some(ProcessId(0))
                } else {
                    None
                }
            });
            let res = Execution::new(mem, protos, seed).run(&mut adv);
            assert!(res.outcome(ProcessId(0)).is_some(), "seed {seed}");
            assert!(res.processes_with_outcome(ret::WIN).len() <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "roles 0 and 1")]
    fn bad_role_panics() {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let _ = le.elect_as(2);
    }

    #[test]
    fn register_accounting() {
        let mut mem = Memory::new();
        let _ = TwoProcessLe::new(&mut mem, "2le");
        assert_eq!(mem.declared_registers(), TwoProcessLe::REGISTERS);
    }

    #[test]
    fn first_solo_step_is_a_write() {
        // Required by the covering argument of Section 5: a process running
        // solo must write before it can win.
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let mut seen_first_op = None;
        {
            let mut adv = FnAdversary::new(AdversaryClass::Adaptive, |view: &View<'_>| {
                if seen_first_op.is_none() {
                    seen_first_op = view.pending(ProcessId(0)).and_then(|p| p.kind);
                }
                view.active().first().copied()
            });
            let res = Execution::new(mem, vec![le.elect_as(0)], 0).run(&mut adv);
            assert!(res.all_finished());
        }
        assert_eq!(seen_first_op, Some(rtas_sim::op::OpKind::Write));
    }
}
