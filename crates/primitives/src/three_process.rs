//! 3-process leader election from two 2-process elections.
//!
//! RatRace associates a 3-process leader-election object with every tree
//! node (Section 3.1): the contenders are the node's splitter winner and
//! the winners bubbling up from the two children. The paper notes the
//! object is "implemented from two 2-process LeaderElect objects":
//!
//! * roles 0 and 1 (the children) first play the *semifinal* `LE_a`;
//! * the semifinal winner plays role 0 of the *final* `LE_b` against
//!   role 2 (the splitter winner), who enters the final directly as
//!   role 1.
//!
//! Each underlying 2-process object is accessed by at most one process per
//! role, as required.

use rtas_sim::memory::Memory;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};

use crate::object::RoleLeaderElect;
use crate::two_process::TwoProcessLe;

/// Descriptor of one 3-process leader-election object (4 registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeProcessLe {
    semifinal: TwoProcessLe,
    fina1: TwoProcessLe,
}

impl ThreeProcessLe {
    /// Allocate the object's registers under the given label.
    pub fn new(memory: &mut Memory, label: &str) -> Self {
        ThreeProcessLe {
            semifinal: TwoProcessLe::new(memory, label),
            fina1: TwoProcessLe::new(memory, label),
        }
    }

    /// Build from a pre-allocated 4-register range (lazy structures).
    pub fn from_range(range: rtas_sim::memory::RegRange) -> Self {
        assert!(range.len() >= 4, "3-process LE needs 4 registers");
        ThreeProcessLe {
            semifinal: TwoProcessLe::from_range(range.sub(0, 2)),
            fina1: TwoProcessLe::from_range(range.sub(2, 2)),
        }
    }

    /// Number of registers the object occupies.
    pub const REGISTERS: u64 = 2 * TwoProcessLe::REGISTERS;
}

impl RoleLeaderElect for ThreeProcessLe {
    fn roles(&self) -> usize {
        3
    }

    fn elect_as(&self, role: usize) -> Box<dyn Protocol> {
        assert!(role < 3, "3-process LE has roles 0..3, got {role}");
        Box::new(ThreeProcessProtocol {
            le: *self,
            role,
            state: State::Start,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    AfterSemifinal,
    AfterFinal,
}

#[derive(Debug)]
struct ThreeProcessProtocol {
    le: ThreeProcessLe,
    role: usize,
    state: State,
}

impl Protocol for ThreeProcessProtocol {
    fn resume(&mut self, input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
        match self.state {
            State::Start => match self.role {
                0 | 1 => {
                    self.state = State::AfterSemifinal;
                    Poll::Call(self.le.semifinal.elect_as(self.role))
                }
                _ => {
                    self.state = State::AfterFinal;
                    Poll::Call(self.le.fina1.elect_as(1))
                }
            },
            State::AfterSemifinal => {
                if input.child_value() == ret::WIN {
                    self.state = State::AfterFinal;
                    Poll::Call(self.le.fina1.elect_as(0))
                } else {
                    Poll::Done(ret::LOSE)
                }
            }
            State::AfterFinal => Poll::Done(input.child_value()),
        }
    }

    fn name(&self) -> &'static str {
        "three-process-le"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::explore::{explore, ExploreConfig, Explored};
    use rtas_sim::word::ProcessId;

    fn system(roles: &[usize]) -> (Memory, Vec<Box<dyn Protocol>>) {
        let mut mem = Memory::new();
        let le = ThreeProcessLe::new(&mut mem, "3le");
        let protos = roles.iter().map(|&r| le.elect_as(r)).collect();
        (mem, protos)
    }

    fn check_safety(e: &Explored) {
        let winners = e.with_outcome(ret::WIN).len();
        assert!(winners <= 1, "two winners: {:?}", e.outcomes);
        if e.all_finished() {
            assert_eq!(winners, 1, "no winner: {:?}", e.outcomes);
        }
    }

    #[test]
    fn each_role_wins_solo() {
        for role in 0..3 {
            let (mem, protos) = system(&[role]);
            let res = Execution::new(mem, protos, 5).run(&mut RoundRobin::new(1));
            assert_eq!(res.outcome(ProcessId(0)), Some(ret::WIN), "role {role}");
        }
    }

    #[test]
    fn random_schedules_unique_winner_all_role_sets() {
        let role_sets: &[&[usize]] = &[&[0, 1], &[0, 2], &[1, 2], &[0, 1, 2]];
        for roles in role_sets {
            for seed in 0..150 {
                let (mem, protos) = system(roles);
                let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed * 3));
                assert!(res.all_finished(), "roles {roles:?} seed {seed}");
                assert_eq!(
                    res.processes_with_outcome(ret::WIN).len(),
                    1,
                    "roles {roles:?} seed {seed}: {:?}",
                    res.outcomes()
                );
            }
        }
    }

    #[test]
    fn exhaustive_two_participant_combinations() {
        let max_steps = if cfg!(debug_assertions) { 14 } else { 16 };
        for roles in [[0usize, 1], [0, 2], [1, 2]] {
            let stats = explore(
                || system(&roles),
                ExploreConfig {
                    max_steps,
                    max_paths: 40_000_000,
                },
                check_safety,
            );
            assert!(stats.paths > 100, "roles {roles:?}");
        }
    }

    #[test]
    fn exhaustive_three_participants_bounded() {
        // Full 3-process exploration branches fast (3 scheduling choices
        // per step); a modest budget still covers every schedule of the
        // fast paths and all their prefixes.
        let max_steps = if cfg!(debug_assertions) { 11 } else { 13 };
        let stats = explore(
            || system(&[0, 1, 2]),
            ExploreConfig {
                max_steps,
                max_paths: 60_000_000,
            },
            check_safety,
        );
        assert!(stats.paths > 10_000);
    }

    #[test]
    fn register_accounting() {
        let mut mem = Memory::new();
        let _ = ThreeProcessLe::new(&mut mem, "3le");
        assert_eq!(mem.declared_registers(), ThreeProcessLe::REGISTERS);
    }

    #[test]
    #[should_panic(expected = "roles 0..3")]
    fn bad_role_panics() {
        let mut mem = Memory::new();
        let le = ThreeProcessLe::new(&mut mem, "3le");
        let _ = le.elect_as(3);
    }
}
