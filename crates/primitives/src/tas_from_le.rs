//! Linearizable one-shot test-and-set from leader election.
//!
//! The paper (Preliminaries, citing Golab, Hendler & Woelfel) observes that
//! any leader-election object plus **one** extra register yields a
//! linearizable TAS in which each `TAS()` call performs at most one
//! `elect()` plus one read and possibly one write:
//!
//! ```text
//! TAS():
//!   if DONE.read() == 1: return 1          // someone already won
//!   if elect() == WIN:   return 0          // we are the winner
//!   DONE.write(1); return 1                // a loser marks the object set
//! ```
//!
//! The winner's `TAS()` returns `0` (it saw the bit as unset and set it);
//! every other call returns `1`. Linearization: the winner's call is
//! ordered first among all calls that passed the `DONE` check; calls that
//! read `DONE == 1` are ordered after the loser-write that set it.
//!
//! This object is **one-shot per process**: each process may call `TAS()`
//! at most once, matching the paper's TAS usage.

use std::sync::Arc;

use rtas_sim::memory::Memory;
use rtas_sim::op::MemOp;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::RegId;

use crate::object::LeaderElect;

/// A one-shot TAS built from a leader-election object and one register.
#[derive(Clone)]
pub struct TasFromLe {
    le: Arc<dyn LeaderElect>,
    done: RegId,
}

impl std::fmt::Debug for TasFromLe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TasFromLe")
            .field("done", &self.done)
            .finish()
    }
}

impl TasFromLe {
    /// Wrap `le` into a TAS, allocating the extra `DONE` register.
    pub fn new(memory: &mut Memory, le: Arc<dyn LeaderElect>, label: &str) -> Self {
        let done = memory.alloc(1, label).get(0);
        TasFromLe { le, done }
    }

    /// Build the protocol performing one `TAS()` call.
    ///
    /// Returns `0` if this process wins (the bit was unset), `1` otherwise.
    pub fn tas(&self) -> Box<dyn Protocol> {
        Box::new(TasProtocol {
            le: Arc::clone(&self.le),
            done: self.done,
            state: State::Start,
        })
    }

    /// Extra registers beyond those of the leader-election object.
    pub const EXTRA_REGISTERS: u64 = 1;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    CheckedDone,
    Elected,
    WroteDone,
}

struct TasProtocol {
    le: Arc<dyn LeaderElect>,
    done: RegId,
    state: State,
}

impl Protocol for TasProtocol {
    fn resume(&mut self, input: Resume, _ctx: &mut Ctx<'_>) -> Poll {
        match self.state {
            State::Start => {
                self.state = State::CheckedDone;
                Poll::Op(MemOp::Read(self.done))
            }
            State::CheckedDone => {
                if input.read_value() == 1 {
                    return Poll::Done(1);
                }
                self.state = State::Elected;
                Poll::Call(self.le.elect())
            }
            State::Elected => {
                if input.child_value() == ret::WIN {
                    return Poll::Done(0);
                }
                self.state = State::WroteDone;
                Poll::Op(MemOp::Write(self.done, 1))
            }
            State::WroteDone => Poll::Done(1),
        }
    }

    fn name(&self) -> &'static str {
        "tas-from-le"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_process::TwoProcessLe;
    use crate::RoleLeaderElect;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::explore::{explore, ExploreConfig};
    use rtas_sim::word::ProcessId;

    /// Adapter: a 2-process role LE exposed as a (2-process) LeaderElect
    /// by assigning roles on a per-protocol basis. Test-only: real usage
    /// assigns roles structurally.
    struct TwoAsLe {
        inner: TwoProcessLe,
        next_role: std::sync::atomic::AtomicUsize,
    }

    impl LeaderElect for TwoAsLe {
        fn elect(&self) -> Box<dyn Protocol> {
            let role = self
                .next_role
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.elect_as(role)
        }
    }

    fn tas_system(k: usize) -> (Memory, Vec<Box<dyn Protocol>>) {
        assert!(k <= 2);
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let wrapped = Arc::new(TwoAsLe {
            inner: le,
            next_role: 0.into(),
        });
        let tas = TasFromLe::new(&mut mem, wrapped, "done");
        let protos = (0..k).map(|_| tas.tas()).collect();
        (mem, protos)
    }

    #[test]
    fn solo_tas_returns_zero() {
        let (mem, protos) = tas_system(1);
        let res = Execution::new(mem, protos, 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(0));
    }

    #[test]
    fn two_process_tas_exactly_one_zero() {
        for seed in 0..200 {
            let (mem, protos) = tas_system(2);
            let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed));
            assert!(res.all_finished());
            let zeros = res.processes_with_outcome(0).len();
            assert_eq!(zeros, 1, "seed {seed}: {:?}", res.outcomes());
        }
    }

    #[test]
    fn exhaustive_two_process_tas_safety() {
        let max_steps = if cfg!(debug_assertions) { 16 } else { 18 };
        let stats = explore(
            || tas_system(2),
            ExploreConfig {
                max_steps,
                max_paths: 40_000_000,
            },
            |e| {
                let zeros = e.with_outcome(0).len();
                assert!(zeros <= 1, "two TAS winners: {:?}", e.outcomes);
                if e.all_finished() {
                    assert_eq!(zeros, 1, "no TAS winner: {:?}", e.outcomes);
                }
            },
        );
        assert!(stats.paths > 1000);
    }

    #[test]
    fn extra_register_is_one() {
        let mut mem = Memory::new();
        let le = TwoProcessLe::new(&mut mem, "2le");
        let before = mem.declared_registers();
        let wrapped = Arc::new(TwoAsLe {
            inner: le,
            next_role: 0.into(),
        });
        let _tas = TasFromLe::new(&mut mem, wrapped, "done");
        assert_eq!(
            mem.declared_registers() - before,
            TasFromLe::EXTRA_REGISTERS
        );
    }
}
