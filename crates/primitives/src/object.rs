//! Object traits shared by the primitive and composite algorithms.

use rtas_sim::protocol::Protocol;

/// A leader-election object any number of processes may enter.
///
/// At most one `elect()` protocol may return [`rtas_sim::protocol::ret::WIN`]
/// in any execution; if no participating process crashes, exactly one does.
/// Each process calls `elect()` at most once.
pub trait LeaderElect: Send + Sync {
    /// Build the per-process protocol performing one `elect()` call.
    fn elect(&self) -> Box<dyn Protocol>;
}

/// A leader-election object with a fixed, small number of named roles.
///
/// The 2- and 3-process elections used inside RatRace address participants
/// by *role* (e.g. "left child winner" vs "splitter winner"), and each role
/// may be used by at most one process per execution — the structures
/// guarantee this by construction, and the simulator objects check it with
/// a per-role entry register in debug builds.
pub trait RoleLeaderElect: Send + Sync {
    /// Number of roles (2 or 3 for the paper's objects).
    fn roles(&self) -> usize;

    /// Build the protocol for the given role.
    ///
    /// # Panics
    ///
    /// Panics if `role >= self.roles()`.
    fn elect_as(&self, role: usize) -> Box<dyn Protocol>;
}

/// A splitter-like object: `split()` returns `S`, `L`, or `R` (encoded as
/// [`rtas_sim::protocol::ret::SPLIT_STOP`] / `SPLIT_LEFT` / `SPLIT_RIGHT`).
pub trait SplitterObject: Send + Sync {
    /// Build the per-process protocol performing one `split()` call.
    fn split(&self) -> Box<dyn Protocol>;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The traits must stay object-safe: they are stored as `Box<dyn …>` /
    // `Arc<dyn …>` throughout the composite algorithms.
    #[test]
    fn traits_are_object_safe() {
        fn _le(_: &dyn LeaderElect) {}
        fn _role(_: &dyn RoleLeaderElect) {}
        fn _sp(_: &dyn SplitterObject) {}
    }
}
