//! The deterministic splitter of Moir & Anderson (WDAG 1994).
//!
//! A splitter uses two registers:
//!
//! * `X` — a "racing" register each caller stamps with its id,
//! * `Y` — a one-shot door.
//!
//! `split()` is four steps: write `X := me`; read `Y` (door closed → `L`);
//! write `Y := 1`; read `X` (still me → `S`, else `R`).
//!
//! Properties (for `k` callers): at most one caller returns `S`; at most
//! `k−1` return `L`; at most `k−1` return `R`; a solo caller returns `S`.
//! These are exactly the properties the paper's Section 2.1 ladder and the
//! elimination paths rely on, and the tests verify them **exhaustively**
//! for 2 and 3 processes via [`rtas_sim::explore`].

use rtas_sim::memory::Memory;
use rtas_sim::op::MemOp;
use rtas_sim::protocol::{ret, Ctx, Poll, Protocol, Resume};
use rtas_sim::word::{RegId, Word};

use crate::object::SplitterObject;

/// Descriptor of one deterministic splitter (2 registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splitter {
    x: RegId,
    y: RegId,
}

impl Splitter {
    /// Allocate a splitter's registers under the given label.
    pub fn new(memory: &mut Memory, label: &str) -> Self {
        let regs = memory.alloc(2, label);
        Splitter {
            x: regs.get(0),
            y: regs.get(1),
        }
    }

    /// Allocate from a pre-allocated 2-register range (used by lazily
    /// allocated structures like the original RatRace grid).
    pub fn from_range(range: rtas_sim::memory::RegRange) -> Self {
        assert!(range.len() >= 2, "splitter needs 2 registers");
        Splitter {
            x: range.get(0),
            y: range.get(1),
        }
    }

    /// Number of registers a splitter occupies.
    pub const REGISTERS: u64 = 2;
}

impl SplitterObject for Splitter {
    fn split(&self) -> Box<dyn Protocol> {
        Box::new(SplitProtocol {
            sp: *self,
            state: State::Init,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Init,
    WroteX,
    ReadY,
    WroteY,
    ReadX,
}

/// One `split()` call.
#[derive(Debug)]
struct SplitProtocol {
    sp: Splitter,
    state: State,
}

impl Protocol for SplitProtocol {
    fn resume(&mut self, input: Resume, ctx: &mut Ctx<'_>) -> Poll {
        // X stores pid + 1 so that 0 remains "nobody".
        let me = ctx.pid.index() as Word + 1;
        match self.state {
            State::Init => {
                self.state = State::WroteX;
                Poll::Op(MemOp::Write(self.sp.x, me))
            }
            State::WroteX => {
                self.state = State::ReadY;
                Poll::Op(MemOp::Read(self.sp.y))
            }
            State::ReadY => {
                if input.read_value() != 0 {
                    return Poll::Done(ret::SPLIT_LEFT);
                }
                self.state = State::WroteY;
                Poll::Op(MemOp::Write(self.sp.y, 1))
            }
            State::WroteY => {
                self.state = State::ReadX;
                Poll::Op(MemOp::Read(self.sp.x))
            }
            State::ReadX => {
                if input.read_value() == me {
                    Poll::Done(ret::SPLIT_STOP)
                } else {
                    Poll::Done(ret::SPLIT_RIGHT)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "splitter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtas_sim::adversary::{RandomSchedule, RoundRobin};
    use rtas_sim::executor::Execution;
    use rtas_sim::explore::{explore, ExploreConfig};
    use rtas_sim::word::ProcessId;

    fn run_k(k: usize, seed: u64) -> Vec<Word> {
        let mut mem = Memory::new();
        let sp = Splitter::new(&mut mem, "sp");
        let protos = (0..k).map(|_| sp.split()).collect();
        let res = Execution::new(mem, protos, seed).run(&mut RandomSchedule::new(seed));
        assert!(res.all_finished());
        (0..k).map(|i| res.outcome(ProcessId(i)).unwrap()).collect()
    }

    fn check_splitter_properties(outs: &[Word]) {
        let k = outs.len();
        let stops = outs.iter().filter(|&&o| o == ret::SPLIT_STOP).count();
        let lefts = outs.iter().filter(|&&o| o == ret::SPLIT_LEFT).count();
        let rights = outs.iter().filter(|&&o| o == ret::SPLIT_RIGHT).count();
        assert!(stops <= 1, "two processes won the splitter");
        assert!(lefts < k, "all got L");
        assert!(rights < k, "all got R");
    }

    #[test]
    fn solo_caller_stops() {
        assert_eq!(run_k(1, 0), vec![ret::SPLIT_STOP]);
    }

    #[test]
    fn properties_hold_on_random_schedules() {
        for k in [2usize, 3, 5, 16] {
            for seed in 0..40 {
                check_splitter_properties(&run_k(k, seed));
            }
        }
    }

    #[test]
    fn round_robin_two_processes() {
        let mut mem = Memory::new();
        let sp = Splitter::new(&mut mem, "sp");
        let protos = (0..2).map(|_| sp.split()).collect();
        let res = Execution::new(mem, protos, 0).run(&mut RoundRobin::new(2));
        let outs = [
            res.outcome(ProcessId(0)).unwrap(),
            res.outcome(ProcessId(1)).unwrap(),
        ];
        check_splitter_properties(&outs);
        // Lockstep: P0 writes X, P1 overwrites X, both pass the door, both
        // fail the X check? No: P1's X survives, so P1 stops, P0 gets R.
        assert_eq!(outs[0], ret::SPLIT_RIGHT);
        assert_eq!(outs[1], ret::SPLIT_STOP);
    }

    #[test]
    fn exhaustive_two_processes() {
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let sp = Splitter::new(&mut mem, "sp");
                (mem, (0..2).map(|_| sp.split()).collect())
            },
            ExploreConfig::default(),
            |e| {
                assert!(e.all_finished());
                let outs: Vec<Word> = e.outcomes.iter().map(|o| o.unwrap()).collect();
                check_splitter_properties(&outs);
            },
        );
        assert!(stats.paths >= 6, "explored {} paths", stats.paths);
        assert_eq!(stats.truncated_paths, 0);
    }

    #[test]
    fn exhaustive_three_processes() {
        let stats = explore(
            || {
                let mut mem = Memory::new();
                let sp = Splitter::new(&mut mem, "sp");
                (mem, (0..3).map(|_| sp.split()).collect())
            },
            ExploreConfig::default(),
            |e| {
                assert!(e.all_finished());
                let outs: Vec<Word> = e.outcomes.iter().map(|o| o.unwrap()).collect();
                check_splitter_properties(&outs);
            },
        );
        assert!(stats.paths > 100);
        assert_eq!(stats.truncated_paths, 0);
    }

    #[test]
    fn register_accounting() {
        let mut mem = Memory::new();
        let _sp = Splitter::new(&mut mem, "sp");
        assert_eq!(mem.declared_registers(), Splitter::REGISTERS);
    }

    #[test]
    fn from_range_uses_given_registers() {
        let mut mem = Memory::new();
        let range = mem.alloc(2, "pre");
        let sp = Splitter::from_range(range);
        let protos = vec![sp.split()];
        let res = Execution::new(mem, protos, 0).run(&mut RoundRobin::new(1));
        assert_eq!(res.outcome(ProcessId(0)), Some(ret::SPLIT_STOP));
    }

    #[test]
    #[should_panic(expected = "needs 2 registers")]
    fn from_short_range_panics() {
        let mut mem = Memory::new();
        let range = mem.alloc(1, "short");
        let _ = Splitter::from_range(range);
    }
}
