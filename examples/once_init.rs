//! One-time initialization — the classic TAS workload.
//!
//! ```text
//! cargo run --example once_init --release
//! ```
//!
//! `N` worker threads all need a shared lookup table, and whichever
//! worker gets there first should build it exactly once (the motivating
//! use of test-and-set in the paper's introduction: mutual exclusion /
//! renaming substrates). The winner of the TAS builds the table and
//! publishes it; everyone else spins until the publication flag flips.
//!
//! Note this is a *one-shot* coordination: each worker consults the TAS
//! at most once, matching the paper's object semantics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use rtas::TestAndSet;

const WORKERS: usize = 6;

fn expensive_table() -> Vec<u64> {
    // Stand-in for a costly computation: first 64 squares.
    (0..64u64).map(|i| i * i).collect()
}

fn main() {
    let tas = TestAndSet::new(WORKERS);
    let table: OnceLock<Vec<u64>> = OnceLock::new();
    let ready = AtomicBool::new(false);

    let sums: Vec<(usize, bool, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|i| {
                let tas = &tas;
                let table = &table;
                let ready = &ready;
                s.spawn(move || {
                    let already_initialized = tas.test_and_set();
                    if !already_initialized {
                        // We won: build and publish.
                        table.set(expensive_table()).expect("single initializer");
                        ready.store(true, Ordering::Release);
                    } else {
                        // Someone else is (or was) building it; wait.
                        while !ready.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                    }
                    let sum: u64 = table.get().expect("published").iter().sum();
                    (i, !already_initialized, sum)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut initializers = 0;
    for (i, built_it, sum) in sums {
        println!(
            "worker {i}: table sum = {sum}{}",
            if built_it { "  (built the table)" } else { "" }
        );
        assert_eq!(sum, (0..64u64).map(|x| x * x).sum::<u64>());
        initializers += built_it as usize;
    }
    assert_eq!(initializers, 1, "the table must be built exactly once");
    println!("table built exactly once by {WORKERS} racing workers.");
}
