//! Renaming from a chain of test-and-set objects.
//!
//! ```text
//! cargo run --example renaming --release
//! ```
//!
//! The paper cites renaming (Eberly–Higham–Warpechowska-Gruca) as a core
//! application of TAS: `n` threads with large, sparse identities acquire
//! small distinct names by racing along an array of TAS objects and
//! keeping the index of the first one they win. With `n` objects every
//! thread is guaranteed a name below `n` (a thread loses `TAS_j` only to
//! a distinct winner, so by the pigeonhole principle it wins one of the
//! first `n`).

use rtas::{Backend, TestAndSet};

const THREADS: usize = 8;

fn main() {
    // One TAS per candidate name; each accepts up to THREADS contenders.
    let slots: Vec<TestAndSet> = (0..THREADS)
        .map(|_| TestAndSet::with_backend(Backend::RatRace, THREADS))
        .collect();

    let names: Vec<(usize, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let slots = &slots;
                s.spawn(move || {
                    for (name, slot) in slots.iter().enumerate() {
                        if !slot.test_and_set() {
                            return (i, name);
                        }
                    }
                    unreachable!("pigeonhole: {THREADS} slots for {THREADS} threads");
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut seen = [false; THREADS];
    for (thread, name) in &names {
        println!("thread {thread} acquired name {name}");
        assert!(!seen[*name], "duplicate name {name}");
        seen[*name] = true;
    }
    println!("all {THREADS} threads got distinct names in 0..{THREADS}.");
}
