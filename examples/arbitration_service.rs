//! The arbitration service end to end, in one process: spawn a server
//! on a loopback port, point N real client threads at one contended
//! key, and watch the paper's randomized test-and-set arbitrate — one
//! winner per epoch, recycled with `RESET`, latency measured from the
//! client side.
//!
//! ```text
//! cargo run --release --example arbitration_service
//! ```

use std::sync::Barrier;
use std::time::Instant;

use rtas_svc::{server, Client};

fn main() {
    let clients = 8;
    let epochs = 200u64;
    let key = b"jobs/2026-07-30/backfill";

    // A server with 4 namespace shards, 8 participants per key-epoch,
    // on a port picked by the OS.
    let srv = server::spawn_local(rtas::Backend::Combined, 4, clients).expect("bind loopback");
    println!("arbitration service on {}", srv.addr());

    let addr = srv.addr();
    let barrier = Barrier::new(clients);
    let per_thread: Vec<(u64, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = &barrier;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut wins = 0u64;
                    let mut latencies_us = Vec::with_capacity(epochs as usize);
                    for _ in 0..epochs {
                        // Everyone contends for the same key...
                        barrier.wait();
                        let t0 = Instant::now();
                        let verdict = client.tas(key).expect("TAS");
                        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                        wins += verdict.won as u64;
                        barrier.wait();
                        // ... and the winner acks + recycles the epoch.
                        if verdict.won {
                            client.reset(key).expect("RESET");
                        }
                        barrier.wait();
                    }
                    (wins, latencies_us)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total_wins: u64 = per_thread.iter().map(|(w, _)| w).sum();
    let mut all: Vec<f64> = per_thread
        .iter()
        .flat_map(|(_, l)| l.iter().copied())
        .collect();
    all.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| all[((all.len() - 1) as f64 * p) as usize];
    println!(
        "{clients} clients x {epochs} epochs on one key: {total_wins} wins \
         (exactly one per epoch: {})",
        total_wins == epochs
    );
    for (t, (wins, _)) in per_thread.iter().enumerate() {
        println!("  client {t}: {wins} epochs won");
    }
    println!(
        "TAS round-trip latency us: p50 {:.1} | p90 {:.1} | p99 {:.1}",
        q(0.50),
        q(0.90),
        q(0.99)
    );
    let stats = srv.namespace().stats();
    println!(
        "server: {} key(s), {} ops, {} wins, {} resets, {} registers",
        stats.keys, stats.ops, stats.wins, stats.resets, stats.registers
    );
    assert_eq!(total_wins, epochs, "exactly one winner per epoch");
    srv.shutdown();
}
