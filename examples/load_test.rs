//! Drive sustained traffic at the native objects — the library face of
//! the `rtas-load` CLI.
//!
//! ```text
//! cargo run --release --example load_test
//! ```
//!
//! Runs the same workload twice: once closed-loop (a fixed fleet
//! hammering the arena back to back — peak throughput) and once
//! open-loop (a deterministic Poisson arrival schedule — latency under
//! *offered* load, queueing included). Both recycle one fixed pool of
//! test-and-set objects by epoch: nothing is rebuilt per resolution.

use rtas::Backend;
use rtas_load::driver::{run_load, LoadSpec, Mode, Slo, Warmup};

fn print_outcome(tag: &str, out: &rtas_load::LoadOutcome) {
    let overall = out.recorder.overall_latency();
    println!(
        "{tag}: {} ops = {} resolutions in {:.1} ms  ({:.0} ops/s)  \
         latency us p50 {:.1} / p90 {:.1} / p99 {:.1}",
        out.total_ops(),
        out.resolutions(),
        out.wall.as_secs_f64() * 1e3,
        out.throughput_ops_per_sec(),
        overall.p50,
        overall.p90,
        overall.p99,
    );
    assert_eq!(
        out.total_wins(),
        out.resolutions(),
        "exactly one winner per resolution"
    );
}

fn main() {
    let threads = 8;
    let shards = 4;

    // Closed loop: as fast as the hardware allows.
    let closed = run_load(LoadSpec {
        backend: Backend::Combined,
        threads,
        shards,
        mode: Mode::Closed { total_ops: 80_000 },
        seed: 42,
        churn: None,
        warmup: Warmup::None,
        pipeline: 1,
        conns: None,
    });
    print_outcome("closed", &closed);

    // The same fleet with churn: every worker thread retires after
    // 1 000 operations and a fresh one takes over its slot.
    let churned = run_load(LoadSpec {
        backend: Backend::Combined,
        threads,
        shards,
        mode: Mode::Closed { total_ops: 80_000 },
        seed: 42,
        churn: Some(1_000),
        warmup: Warmup::None,
        pipeline: 1,
        conns: None,
    });
    print_outcome("closed+churn", &churned);

    // Open loop: offer 50k ops/s for half a second. The seed fixes the
    // arrival schedule exactly — rerun with the same seed and the
    // offered load is bit-identical.
    let open = run_load(LoadSpec {
        backend: Backend::Combined,
        threads,
        shards,
        mode: Mode::Open {
            rate: 50_000.0,
            duration_secs: 0.5,
        },
        seed: 42,
        churn: None,
        warmup: Warmup::None,
        pipeline: 1,
        conns: None,
    });
    print_outcome("open", &open);

    // A latency SLO over the open-loop run.
    let slo = Slo {
        p50_us: Some(10_000.0),
        p99_us: Some(100_000.0),
    };
    match slo.violations(&open).as_slice() {
        [] => println!("SLO met: p50 <= 10ms, p99 <= 100ms"),
        violations => {
            for v in violations {
                println!("SLO violation: {v}");
            }
        }
    }
}
