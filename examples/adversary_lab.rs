//! Adversary laboratory: watch the paper's core phenomenon live.
//!
//! ```text
//! cargo run --example adversary_lab --release
//! ```
//!
//! Runs the O(log* k) algorithm (Theorem 2.3), the space-efficient
//! RatRace (Section 3.2), and the Section 4 combiner on the simulated
//! asynchronous machine under two schedulers:
//!
//! * a random (oblivious) schedule — the friendly world where the log*
//!   algorithm shines;
//! * the ascending-write **adaptive** attack — which drives the log*
//!   algorithm to Θ(k) steps while RatRace and the combiner stay
//!   logarithmic (the observation that motivates Theorem 4.1).

use std::sync::Arc;

use rtas::algorithms::attacks::AscendingWriteAttack;
use rtas::algorithms::{Combined, LogStarLe, SpaceEfficientRatRace};
use rtas::primitives::LeaderElect;
use rtas::sim::adversary::{Adversary, RandomSchedule};
use rtas::sim::executor::Execution;
use rtas::sim::memory::Memory;
use rtas::sim::protocol::{ret, Protocol};

fn mean_max_steps(
    build: impl Fn(&mut Memory) -> Arc<dyn LeaderElect>,
    k: usize,
    attack: bool,
    trials: u64,
) -> f64 {
    let mut total = 0u64;
    for t in 0..trials {
        let mut mem = Memory::new();
        let le = build(&mut mem);
        let protos: Vec<Box<dyn Protocol>> = (0..k).map(|_| le.elect()).collect();
        let mut random = RandomSchedule::new(t * 1337 + 1);
        let mut attacking = AscendingWriteAttack::new();
        let adv: &mut dyn Adversary = if attack { &mut attacking } else { &mut random };
        let res = Execution::new(mem, protos, t).run(adv);
        assert!(res.all_finished());
        assert_eq!(res.processes_with_outcome(ret::WIN).len(), 1);
        total += res.steps().max();
    }
    total as f64 / trials as f64
}

fn main() {
    let trials = 6;
    println!("mean max-steps per process (k = contention), {trials} trials each\n");
    println!("k | algorithm | random schedule | adaptive attack");
    for k in [8usize, 32, 128] {
        type LeBuilder = Box<dyn Fn(&mut Memory) -> Arc<dyn LeaderElect>>;
        let rows: Vec<(&str, LeBuilder)> = vec![
            (
                "log*  (Thm 2.3)",
                Box::new(move |m: &mut Memory| {
                    Arc::new(LogStarLe::new(m, k)) as Arc<dyn LeaderElect>
                }),
            ),
            (
                "ratrace (Sec 3)",
                Box::new(move |m: &mut Memory| {
                    Arc::new(SpaceEfficientRatRace::new(m, k)) as Arc<dyn LeaderElect>
                }),
            ),
            (
                "combined (Sec 4)",
                Box::new(move |m: &mut Memory| {
                    let weak = Arc::new(LogStarLe::new(m, k));
                    Arc::new(Combined::new(m, weak, k)) as Arc<dyn LeaderElect>
                }),
            ),
        ];
        for (name, build) in rows {
            let friendly = mean_max_steps(&build, k, false, trials);
            let attacked = mean_max_steps(&build, k, true, trials);
            println!("{k} | {name} | {friendly:.1} | {attacked:.1}");
        }
        println!();
    }
    println!("note how the attack sends log* to ~linear while the combiner");
    println!("keeps both columns low — Theorem 4.1 in action.");
}
