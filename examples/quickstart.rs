//! Quickstart: a one-shot test-and-set across real threads.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Eight threads race on one [`rtas::TestAndSet`]; exactly one observes
//! the bit as previously-unset (it "wins"). The object is built from
//! atomic read/write registers only — no compare-and-swap, no
//! fetch-and-or — using the PODC 2012 algorithms.

use rtas::{Backend, TestAndSet};

fn main() {
    const THREADS: usize = 8;

    for backend in [
        Backend::LogStar,
        Backend::LogLog,
        Backend::RatRace,
        Backend::Combined,
    ] {
        let tas = TestAndSet::with_backend(backend, THREADS);
        println!(
            "{backend:?}: {} atomic registers for {} participants",
            tas.registers(),
            tas.capacity()
        );

        let results: Vec<(usize, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|i| {
                    let tas = &tas;
                    s.spawn(move || (i, tas.test_and_set()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (i, already_set) in &results {
            println!(
                "  thread {i}: test_and_set() -> {} ({})",
                already_set,
                if *already_set { "lost" } else { "WON" }
            );
        }
        let winners = results.iter().filter(|(_, set)| !set).count();
        assert_eq!(winners, 1, "exactly one winner expected");
        println!();
    }
    println!("every backend elected exactly one winner.");
}
